package control

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/des"
	"repro/internal/ed2k"
	"repro/internal/honeypot"
	"repro/internal/logging"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/transport"
	"repro/internal/wire"
)

var t0 = time.Date(2008, 10, 1, 0, 0, 0, 0, time.UTC)

type world struct {
	loop *des.Loop
	net  *netsim.Network
	srv  *server.Server
	hp   *honeypot.Honeypot
	link *Link
}

func (w *world) settle() { w.loop.RunUntil(w.loop.Now().Add(time.Minute)) }

func newWorld(t *testing.T) *world {
	t.Helper()
	loop := des.NewLoop(t0, 41)
	nw := netsim.New(loop, netsim.DefaultConfig())
	srv := server.New(nw.NewHost("server"), server.DefaultConfig("big"))
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	w := &world{loop: loop, net: nw, srv: srv}

	hpHost := nw.NewHost("hp")
	w.hp = honeypot.New(hpHost, honeypot.Config{
		ID: "hp-0", Strategy: honeypot.RandomContent, Port: 4662, Secret: []byte("s"),
	})
	if err := w.hp.Client().Listen(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewAgent(hpHost, w.hp, DefaultPort); err != nil {
		t.Fatal(err)
	}

	mgrHost := nw.NewHost("manager")
	Dial(mgrHost, "hp-0", netip.AddrPortFrom(hpHost.Addr(), DefaultPort), func(l *Link, err error) {
		if err != nil {
			t.Errorf("control dial: %v", err)
			return
		}
		w.link = l
	})
	w.settle()
	if w.link == nil {
		t.Fatal("no control link")
	}
	return w
}

func TestConnectServerViaControl(t *testing.T) {
	w := newWorld(t)
	var gotErr error = errNotCalled
	w.link.ConnectServer(w.srv.Addr(), func(err error) { gotErr = err })
	w.settle()
	if gotErr != nil {
		t.Fatalf("connect: %v", gotErr)
	}
	var st honeypot.Status
	w.link.Status(func(s honeypot.Status, err error) {
		if err != nil {
			t.Errorf("status: %v", err)
			return
		}
		st = s
	})
	w.settle()
	if !st.Connected {
		t.Error("honeypot not connected after control ConnectServer")
	}
	if st.ID != "hp-0" {
		t.Errorf("status ID %q", st.ID)
	}
}

var errNotCalled = &notCalledError{}

type notCalledError struct{}

func (*notCalledError) Error() string { return "callback not called" }

func TestAdvertiseViaControl(t *testing.T) {
	w := newWorld(t)
	w.link.ConnectServer(w.srv.Addr(), func(error) {})
	w.settle()
	files := []client.SharedFile{
		{Hash: ed2k.SyntheticHash("a"), Name: "a.avi", Size: 700 << 20, Type: "Video"},
		{Hash: ed2k.SyntheticHash("b"), Name: "b.mp3", Size: 4 << 20, Type: "Audio"},
	}
	var gotErr error = errNotCalled
	w.link.Advertise(files, func(err error) { gotErr = err })
	w.settle()
	if gotErr != nil {
		t.Fatalf("advertise: %v", gotErr)
	}
	if w.srv.FilesIndexed() != 2 {
		t.Errorf("server indexed %d", w.srv.FilesIndexed())
	}
}

func TestTakeRecordsViaControl(t *testing.T) {
	w := newWorld(t)
	w.link.ConnectServer(w.srv.Addr(), func(error) {})
	w.settle()
	bait := client.SharedFile{Hash: ed2k.SyntheticHash("bait"), Name: "bait.avi", Size: 1 << 20, Type: "Video"}
	w.link.Advertise([]client.SharedFile{bait}, func(error) {})
	w.settle()

	// One peer contacts the honeypot.
	peer := client.New(w.net.NewHost("peer"), client.Config{
		Label: "peer", UserHash: ed2k.NewUserHash("peer"), Port: 4663,
	})
	if err := peer.Listen(); err != nil {
		t.Fatal(err)
	}
	hpAddr := netip.AddrPortFrom(w.hp.Client().Host().Addr(), 4662)
	peer.DialPeer(hpAddr, func(ps *client.PeerSession, err error) {
		if err != nil {
			t.Errorf("dial hp: %v", err)
			return
		}
		ps.SendHello()
		ps.StartUpload(bait.Hash)
	})
	w.settle()

	var recs []logging.Record
	w.link.TakeRecords(func(r []logging.Record, err error) {
		if err != nil {
			t.Errorf("take: %v", err)
			return
		}
		recs = r
	})
	w.settle()
	if len(recs) < 2 {
		t.Fatalf("collected %d records", len(recs))
	}
	// Records survive JSON: check the essential fields.
	if recs[0].Kind != logging.KindHello || recs[0].PeerIP == "" {
		t.Errorf("record 0: %+v", recs[0])
	}
	// Second take is empty (drained).
	w.link.TakeRecords(func(r []logging.Record, err error) {
		if err != nil {
			t.Errorf("take2: %v", err)
		}
		if len(r) != 0 {
			t.Errorf("second take returned %d", len(r))
		}
	})
	w.settle()
}

func TestLinkFailurePropagatesToPending(t *testing.T) {
	w := newWorld(t)
	hpHost, _ := w.net.HostAt(netip.AddrPortFrom(w.hp.Client().Host().Addr(), DefaultPort).Addr())
	var gotErr error
	w.link.Status(func(s honeypot.Status, err error) { gotErr = err })
	hpHost.Crash()
	w.settle()
	if gotErr == nil {
		t.Error("pending request should fail when the agent dies")
	}
	if !w.link.Closed() {
		t.Error("link should be closed")
	}
	// New requests fail fast.
	called := false
	w.link.Status(func(s honeypot.Status, err error) {
		called = true
		if err == nil {
			t.Error("request on dead link should error")
		}
	})
	if !called {
		t.Error("dead-link request must call back synchronously")
	}
}

func TestBadEnvelopeAnswered(t *testing.T) {
	w := newWorld(t)
	// Speak garbage directly to the agent port; the agent must answer
	// with an error envelope, not crash or stay silent.
	h := w.net.NewHost("garbler")
	var replies []Envelope
	h.Dial(netip.AddrPortFrom(w.hp.Client().Host().Addr(), DefaultPort), wire.ServerSpace, func(c transport.Conn, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		c.SetHooks(transport.ConnHooks{OnMessage: func(m wire.Message) {
			if env, err := unmarshalEnvelope(m); err == nil {
				replies = append(replies, env)
			}
		}})
		c.Send(&wire.ServerMessage{Text: "{this is not json"})
		c.Send(marshalEnvelope(Envelope{Seq: 1, Type: "no-such-request"}))
	})
	w.settle()
	if len(replies) != 2 {
		t.Fatalf("got %d replies", len(replies))
	}
	for i, r := range replies {
		if r.Error == "" {
			t.Errorf("reply %d carries no error: %+v", i, r)
		}
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	env := Envelope{Seq: 7, Type: TypeStatus}
	m := marshalEnvelope(env)
	got, err := unmarshalEnvelope(m)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 7 || got.Type != TypeStatus {
		t.Errorf("round trip: %+v", got)
	}
	if _, err := unmarshalEnvelope(&wire.Reject{}); err == nil {
		t.Error("non-ServerMessage frame must fail")
	}
	if _, err := unmarshalEnvelope(&wire.ServerMessage{Text: "{not json"}); err == nil {
		t.Error("bad JSON must fail")
	}
}

func TestFileSpecRoundTrip(t *testing.T) {
	f := client.SharedFile{Hash: ed2k.SyntheticHash("x"), Name: "x.avi", Size: 123, Type: "Video"}
	spec := SpecOf(f)
	back, err := spec.ToShared()
	if err != nil {
		t.Fatal(err)
	}
	if back != f {
		t.Errorf("round trip: %+v != %+v", back, f)
	}
	if _, err := (FileSpec{Hash: "zz"}).ToShared(); err == nil {
		t.Error("bad hash must fail")
	}
	if !strings.Contains(spec.Hash, strings.ToUpper(spec.Hash[:4])) {
		t.Error("hash should be upper-case hex")
	}
}
