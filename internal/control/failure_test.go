package control

import (
	"encoding/json"
	"errors"
	"net/netip"
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/honeypot"
	"repro/internal/logging"
	"repro/internal/logstore"
	"repro/internal/netsim"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Tests for the package's failure semantics: typed remote errors, the
// ErrLinkClosed identity, and the deadline/retry policy.

func TestNoSourceCrossesWireAsTypedCode(t *testing.T) {
	w := newWorldWithSink(t, nil, nil) // agent without a record source
	var gotErr error = errNotCalled
	w.link.TakeRecordsSince(logstore.Checkpoint{}, 0, func(_ []logging.Record, _ logstore.Checkpoint, err error) {
		gotErr = err
	})
	w.settle()
	if gotErr == nil || gotErr == errNotCalled {
		t.Fatalf("take-records-since without source: err = %v", gotErr)
	}
	var re *RemoteError
	if !errors.As(gotErr, &re) {
		t.Fatalf("error is %T, want *RemoteError", gotErr)
	}
	if re.Code != CodeNoSource {
		t.Errorf("code = %q, want %q", re.Code, CodeNoSource)
	}
	if !IsNoSource(gotErr) {
		t.Error("IsNoSource misses the typed code")
	}
}

func TestIsNoSourceFallbacks(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		// Typed code: authoritative.
		{&RemoteError{Code: CodeNoSource, Msg: "whatever"}, true},
		// Uncoded remote from an agent predating the field: text fallback.
		{&RemoteError{Msg: "honeypot has no record source"}, true},
		// A code is present and says something else: text must not win.
		{&RemoteError{Code: "other", Msg: "no record source"}, false},
		// Plain local error, legacy text match.
		{errNoSource, true},
		{errors.New("control: dial refused"), false},
		{nil, false},
	}
	for i, c := range cases {
		if got := IsNoSource(c.err); got != c.want {
			t.Errorf("case %d (%v): IsNoSource = %v, want %v", i, c.err, got, c.want)
		}
	}
}

func TestCloseFailsPendingWithErrLinkClosed(t *testing.T) {
	w := newWorld(t)
	var gotErr error = errNotCalled
	w.link.Status(func(_ honeypot.Status, err error) { gotErr = err })
	w.link.Close() // before the response can arrive
	if !errors.Is(gotErr, ErrLinkClosed) {
		t.Fatalf("pending callback got %v, want ErrLinkClosed", gotErr)
	}
	// Compatibility: the historical sentinel still matches.
	if !errors.Is(gotErr, transport.ErrClosed) {
		t.Error("ErrLinkClosed no longer matches transport.ErrClosed")
	}
	// Requests after close fail the same way, immediately.
	gotErr = errNotCalled
	w.link.Status(func(_ honeypot.Status, err error) { gotErr = err })
	if !errors.Is(gotErr, ErrLinkClosed) {
		t.Fatalf("post-close request got %v, want ErrLinkClosed", gotErr)
	}
}

// flakyAgent is a control responder that swallows the first drop
// requests of each type and answers the rest, for exercising the
// deadline/retry machinery without a honeypot.
type flakyAgent struct {
	drop int
	seen int
}

func (f *flakyAgent) accept(conn transport.Conn) {
	conn.SetHooks(transport.ConnHooks{
		OnMessage: func(m wire.Message) {
			env, err := unmarshalEnvelope(m)
			if err != nil {
				return
			}
			f.seen++
			if f.seen <= f.drop {
				return // silence: let the deadline do its work
			}
			b, _ := json.Marshal(honeypot.Status{ID: "flaky"})
			conn.Send(marshalEnvelope(Envelope{Seq: env.Seq, Type: TypeResponse, Payload: b}))
		},
	})
}

// flakyWorld wires a Link to a flakyAgent under the given policy.
func flakyWorld(t *testing.T, drop int, p Policy) (*des.Loop, *flakyAgent, *Link) {
	t.Helper()
	loop := des.NewLoop(t0, 7)
	nw := netsim.New(loop, netsim.DefaultConfig())
	fa := &flakyAgent{drop: drop}
	agentHost := nw.NewHost("agent")
	if _, err := agentHost.Listen(DefaultPort, wire.ServerSpace, fa.accept); err != nil {
		t.Fatal(err)
	}
	var link *Link
	Dial(nw.NewHost("manager"), "flaky", netip.AddrPortFrom(agentHost.Addr(), DefaultPort), func(l *Link, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		link = l
	})
	loop.RunUntil(loop.Now().Add(time.Minute))
	if link == nil {
		t.Fatal("no link")
	}
	link.SetPolicy(p)
	return loop, fa, link
}

func TestRequestRetriesAfterTimeout(t *testing.T) {
	loop, fa, link := flakyWorld(t, 2, Policy{
		Timeout: 2 * time.Second, Attempts: 3, Backoff: time.Second, BackoffMax: 4 * time.Second,
	})
	var gotErr error = errNotCalled
	var st honeypot.Status
	link.Status(func(s honeypot.Status, err error) { st, gotErr = s, err })
	loop.RunUntil(loop.Now().Add(5 * time.Minute))
	if gotErr != nil {
		t.Fatalf("status after retries: %v", gotErr)
	}
	if st.ID != "flaky" {
		t.Errorf("status ID %q", st.ID)
	}
	if fa.seen != 3 {
		t.Errorf("agent saw %d requests, want 3 (two dropped, one answered)", fa.seen)
	}
}

func TestRequestTimeoutExhaustsBudget(t *testing.T) {
	loop, fa, link := flakyWorld(t, 1<<30, Policy{
		Timeout: 2 * time.Second, Attempts: 2, Backoff: time.Second,
	})
	var gotErr error = errNotCalled
	link.Status(func(_ honeypot.Status, err error) { gotErr = err })
	loop.RunUntil(loop.Now().Add(5 * time.Minute))
	if !errors.Is(gotErr, ErrTimeout) {
		t.Fatalf("exhausted budget got %v, want ErrTimeout", gotErr)
	}
	if fa.seen != 2 {
		t.Errorf("agent saw %d requests, want the full budget of 2", fa.seen)
	}
}

func TestTakeRecordsNeverRetries(t *testing.T) {
	// take-records drains destructively: a lost answer may have emptied
	// the buffer, so re-issuing it could lose records. One attempt only.
	loop, fa, link := flakyWorld(t, 1<<30, Policy{
		Timeout: 2 * time.Second, Attempts: 3, Backoff: time.Second,
	})
	var gotErr error = errNotCalled
	link.TakeRecords(func(_ []logging.Record, err error) { gotErr = err })
	loop.RunUntil(loop.Now().Add(5 * time.Minute))
	if !errors.Is(gotErr, ErrTimeout) {
		t.Fatalf("silent drain got %v, want ErrTimeout", gotErr)
	}
	if fa.seen != 1 {
		t.Errorf("agent saw %d drain requests, want exactly 1", fa.seen)
	}
}

func TestLateReplyAfterExpiryIsDropped(t *testing.T) {
	// An answer that arrives after its attempt expired must not reach
	// the callback (the retry owns the request now) and must not confuse
	// the retry's bookkeeping.
	loop := des.NewLoop(t0, 7)
	nw := netsim.New(loop, netsim.DefaultConfig())
	agentHost := nw.NewHost("agent")
	seen := 0
	_, err := agentHost.Listen(DefaultPort, wire.ServerSpace, func(conn transport.Conn) {
		conn.SetHooks(transport.ConnHooks{
			OnMessage: func(m wire.Message) {
				env, uerr := unmarshalEnvelope(m)
				if uerr != nil {
					return
				}
				seen++
				delay := time.Duration(0)
				if seen == 1 {
					delay = 10 * time.Second // past the 2s deadline
				}
				b, _ := json.Marshal(honeypot.Status{ID: "late"})
				agentHost.After(delay, func() {
					conn.Send(marshalEnvelope(Envelope{Seq: env.Seq, Type: TypeResponse, Payload: b}))
				})
			},
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	var link *Link
	Dial(nw.NewHost("manager"), "late", netip.AddrPortFrom(agentHost.Addr(), DefaultPort), func(l *Link, derr error) {
		link = l
	})
	loop.RunUntil(loop.Now().Add(time.Minute))
	if link == nil {
		t.Fatal("no link")
	}
	link.SetPolicy(Policy{Timeout: 2 * time.Second, Attempts: 3, Backoff: time.Second})
	calls := 0
	var gotErr error
	link.Status(func(_ honeypot.Status, err error) { calls++; gotErr = err })
	loop.RunUntil(loop.Now().Add(5 * time.Minute))
	if calls != 1 {
		t.Fatalf("callback ran %d times, want exactly once", calls)
	}
	if gotErr != nil {
		t.Fatalf("retried status: %v", gotErr)
	}
	if seen != 2 {
		t.Errorf("agent saw %d requests, want 2 (expired + retry)", seen)
	}
}
