package anonymize

import (
	"errors"
	"fmt"
	"io"
	"net/netip"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/logging"
)

func TestHashIPStableAndKeyed(t *testing.T) {
	a := NewIPHasher([]byte("campaign-secret"))
	b := NewIPHasher([]byte("campaign-secret"))
	c := NewIPHasher([]byte("other-secret"))
	ip := netip.MustParseAddr("192.0.2.7")
	if a.HashIP(ip) != b.HashIP(ip) {
		t.Error("same key must hash identically (step 2 depends on it)")
	}
	if a.HashIP(ip) == c.HashIP(ip) {
		t.Error("different keys must hash differently")
	}
	if a.HashIP(ip) == a.HashIP(netip.MustParseAddr("192.0.2.8")) {
		t.Error("different IPs must hash differently")
	}
	if len(a.HashIP(ip)) != 16 {
		t.Errorf("hash length %d", len(a.HashIP(ip)))
	}
}

func TestHashIPDoesNotRevealAddress(t *testing.T) {
	h := NewIPHasher([]byte("s"))
	ip := netip.MustParseAddr("203.0.113.99")
	out := h.HashIP(ip)
	if strings.Contains(out, "203") && strings.Contains(out, "113") {
		// Extremely unlikely by chance; mostly a tripwire for accidental
		// plain-text implementations.
		t.Errorf("hash %q suspiciously contains address fragments", out)
	}
	if _, err := netip.ParseAddr(out); err == nil {
		t.Error("hash parses as an IP address")
	}
}

func TestRenumbererFirstAppearanceOrder(t *testing.T) {
	r := NewRenumberer()
	if r.Number("aaa") != 0 || r.Number("bbb") != 1 || r.Number("aaa") != 0 || r.Number("ccc") != 2 {
		t.Error("numbering must follow first appearance")
	}
	if r.Count() != 3 {
		t.Errorf("Count = %d", r.Count())
	}
}

func TestRenumberRecordsCoherentAcrossHoneypots(t *testing.T) {
	h := NewIPHasher([]byte("secret"))
	ipA := h.HashIP(netip.MustParseAddr("10.1.1.1"))
	ipB := h.HashIP(netip.MustParseAddr("10.2.2.2"))
	log1 := []logging.Record{{PeerIP: ipA, Honeypot: "hp-0"}, {PeerIP: ipB, Honeypot: "hp-0"}}
	log2 := []logging.Record{{PeerIP: ipB, Honeypot: "hp-1"}, {PeerIP: ipA, Honeypot: "hp-1"}}

	r := NewRenumberer()
	merged := append(append([]logging.Record{}, log1...), log2...)
	n := r.RenumberRecords(merged)
	if n != 2 {
		t.Fatalf("distinct peers = %d", n)
	}
	// Same original IP must map to the same number in both honeypot logs.
	if merged[0].PeerIP != merged[3].PeerIP {
		t.Errorf("ipA numbered %s and %s", merged[0].PeerIP, merged[3].PeerIP)
	}
	if merged[1].PeerIP != merged[2].PeerIP {
		t.Errorf("ipB numbered %s and %s", merged[1].PeerIP, merged[2].PeerIP)
	}
	if merged[0].PeerIP != "0" {
		t.Errorf("first peer numbered %s", merged[0].PeerIP)
	}
}

func TestRenumberSkipsEmpty(t *testing.T) {
	r := NewRenumberer()
	recs := []logging.Record{{PeerIP: ""}}
	if n := r.RenumberRecords(recs); n != 0 {
		t.Errorf("count = %d", n)
	}
	if recs[0].PeerIP != "" {
		t.Error("empty PeerIP must stay empty")
	}
}

func TestSplitWordsAlternation(t *testing.T) {
	parts := splitWords("some.movie (2008)-final.avi")
	rebuilt := strings.Join(parts, "")
	if rebuilt != "some.movie (2008)-final.avi" {
		t.Errorf("split/join not lossless: %q", rebuilt)
	}
	for i, p := range parts {
		if p == "" {
			continue
		}
		wantWord := i%2 == 0
		if isWordRune(rune(p[0])) != wantWord {
			t.Errorf("part %d %q in wrong position", i, p)
		}
	}
}

func TestNameAnonymizerThreshold(t *testing.T) {
	a := NewNameAnonymizer(2)
	names := []string{
		"common.rareone.avi",
		"common.raretwo.avi",
		"common.common.mp3",
	}
	for _, n := range names {
		a.Observe(n)
	}
	// "common" appears 4 times, "avi" twice, "rareone"/"raretwo"/"mp3" once.
	got := a.Anonymize("common.rareone.avi")
	if !strings.HasPrefix(got, "common.") {
		t.Errorf("frequent word replaced: %q", got)
	}
	if strings.Contains(got, "rareone") {
		t.Errorf("rare word kept: %q", got)
	}
	if !strings.HasSuffix(got, ".avi") {
		t.Errorf("avi (freq 2) should be kept: %q", got)
	}
	// Coherence: the same rare word maps to the same token.
	if a.Anonymize("common.rareone.avi") != got {
		t.Error("anonymization not deterministic")
	}
	// Distinct rare words map to distinct tokens.
	other := a.Anonymize("common.raretwo.avi")
	if other == got {
		t.Error("distinct rare words collided")
	}
	if a.ReplacedWords() != 2 {
		t.Errorf("ReplacedWords = %d", a.ReplacedWords())
	}
}

func TestNameAnonymizerCaseInsensitive(t *testing.T) {
	a := NewNameAnonymizer(2)
	a.Observe("Word.x")
	a.Observe("word.y")
	if got := a.Anonymize("Word.x"); !strings.HasPrefix(got, "Word") {
		t.Errorf("case-insensitive counting failed: %q", got)
	}
}

func TestAnonymizeRecordNames(t *testing.T) {
	recs := []logging.Record{
		{FileName: "popular.secret1.avi"},
		{FileName: "popular.secret2.avi"},
		{Files: []logging.SharedFile{{Name: "popular.secret3.avi"}}},
	}
	AnonymizeRecordNames(recs, 3)
	for i, want := range []string{"secret1", "secret2"} {
		if strings.Contains(recs[i].FileName, want) {
			t.Errorf("record %d still contains %q: %q", i, want, recs[i].FileName)
		}
		if !strings.Contains(recs[i].FileName, "popular") {
			t.Errorf("record %d lost frequent word: %q", i, recs[i].FileName)
		}
	}
	if strings.Contains(recs[2].Files[0].Name, "secret3") {
		t.Errorf("shared list name not anonymized: %q", recs[2].Files[0].Name)
	}
}

func TestAuditCatchesRawIPs(t *testing.T) {
	bad := []logging.Record{{PeerIP: "192.0.2.55"}}
	if err := Audit(bad); err == nil {
		t.Error("raw IPv4 must fail audit")
	}
	bad6 := []logging.Record{{PeerIP: "2001:db8::1"}}
	if err := Audit(bad6); err == nil {
		t.Error("raw IPv6 must fail audit")
	}
	weird := []logging.Record{{PeerIP: "not-an-ip-nor-hash"}}
	if err := Audit(weird); err == nil {
		t.Error("unclassifiable PeerIP must fail audit")
	}
}

func TestAuditAcceptsPipelineOutput(t *testing.T) {
	h := NewIPHasher([]byte("k"))
	recs := []logging.Record{
		{PeerIP: h.HashIP(netip.MustParseAddr("10.0.0.1"))},
		{PeerIP: ""},
	}
	if err := Audit(recs); err != nil {
		t.Errorf("hashed records must pass: %v", err)
	}
	NewRenumberer().RenumberRecords(recs)
	if err := Audit(recs); err != nil {
		t.Errorf("renumbered records must pass: %v", err)
	}
}

// Property: the full two-step pipeline is injective per campaign — two
// addresses get the same final number iff they are the same address.
func TestQuickPipelineInjective(t *testing.T) {
	h := NewIPHasher([]byte("prop"))
	r := NewRenumberer()
	seen := map[string]string{} // number -> address
	f := func(a, b, c, d byte) bool {
		ip := netip.AddrFrom4([4]byte{a, b, c, d})
		n := strconv.Itoa(r.Number(h.HashIP(ip)))
		if prev, ok := seen[n]; ok {
			return prev == ip.String()
		}
		seen[n] = ip.String()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// Property: name anonymization never leaks a below-threshold word.
func TestQuickNoRareWordSurvives(t *testing.T) {
	f := func(words []string) bool {
		a := NewNameAnonymizer(2)
		var names []string
		for i, w := range words {
			name := fmt.Sprintf("unique%dzz%s.ext", i, sanitize(w))
			names = append(names, name)
			a.Observe(name)
		}
		for i, n := range names {
			got := a.Anonymize(n)
			if strings.Contains(got, fmt.Sprintf("unique%dzz", i)) {
				return false // each uniqueNzz... word appears once, must go
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		if isWordRune(r) && r < 0x80 {
			b.WriteRune(r)
		}
	}
	return b.String()
}

func BenchmarkHashIP(b *testing.B) {
	h := NewIPHasher([]byte("campaign"))
	ip := netip.MustParseAddr("198.51.100.23")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.HashIP(ip)
	}
}

func BenchmarkRenumber100k(b *testing.B) {
	recs := make([]logging.Record, 100_000)
	h := NewIPHasher([]byte("x"))
	for i := range recs {
		ip := netip.AddrFrom4([4]byte{byte(i >> 16), byte(i >> 8), byte(i), 1})
		recs[i].PeerIP = h.HashIP(ip)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := make([]logging.Record, len(recs))
		copy(cp, recs)
		NewRenumberer().RenumberRecords(cp)
	}
}

// ---------------------------------------------------------------------------
// Streaming stages.

// drainAll pulls an iterator dry, returning records and the terminal
// error (nil for a clean io.EOF).
func drainAll(t *testing.T, it logging.Iterator) ([]logging.Record, error) {
	t.Helper()
	var out []logging.Record
	for {
		r, err := it.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
}

// TestStagesMatchSlicePipeline pins the streaming pipeline (renumber →
// observe/anonymize → audit) bit-identical to the slice-based one on
// the same input.
func TestStagesMatchSlicePipeline(t *testing.T) {
	h := NewIPHasher([]byte("stage-secret"))
	var recs []logging.Record
	base := netip.MustParseAddr("10.0.0.0")
	names := []string{
		"popular.word.rareone.avi",
		"popular.word.raretwo.avi",
		"popular.word.mp3",
		"", // records without a file
	}
	addr := base
	for i := 0; i < 40; i++ {
		addr = addr.Next()
		if i%3 == 0 {
			addr = base // repeats: coherent renumbering matters
		}
		r := logging.Record{
			Honeypot: fmt.Sprintf("hp-%d", i%3),
			PeerIP:   h.HashIP(addr),
			FileName: names[i%len(names)],
		}
		if i%7 == 0 {
			r.Files = []logging.SharedFile{{Name: "popular.shared.rarethree.iso"}}
		}
		recs = append(recs, r)
	}

	// Slice path.
	want := make([]logging.Record, len(recs))
	copy(want, recs)
	for i := range want { // deep-copy shared lists: the slice path mutates them
		if len(want[i].Files) > 0 {
			want[i].Files = append([]logging.SharedFile(nil), recs[i].Files...)
		}
	}
	renA := NewRenumberer()
	distinctWant := renA.RenumberRecords(want)
	naA := AnonymizeRecordNames(want, 2)
	if err := Audit(want); err != nil {
		t.Fatal(err)
	}

	// Streaming path over a re-iterable source.
	src := logging.NewMergeSource(recs)
	renB := NewRenumberer()
	naB := NewNameAnonymizer(2)
	pass1, _ := src.Iter()
	if err := naB.ObserveIter(pass1); err != nil {
		t.Fatal(err)
	}
	pass2, _ := src.Iter()
	got, err := drainAll(t, AuditIter(naB.AnonymizeIter(renB.RenumberIter(pass2))))
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(got, want) {
		t.Fatal("streamed records differ from slice pipeline")
	}
	if renB.Count() != distinctWant {
		t.Fatalf("distinct peers: streamed %d, slice %d", renB.Count(), distinctWant)
	}
	if naB.ReplacedWords() != naA.ReplacedWords() {
		t.Fatalf("replaced words: streamed %d, slice %d", naB.ReplacedWords(), naA.ReplacedWords())
	}
	// The streaming stage must not have touched the source records.
	for i := range recs {
		if recs[i].PeerIP == want[i].PeerIP && want[i].PeerIP != "" {
			t.Fatalf("record %d source PeerIP was rewritten in place", i)
		}
		for j := range recs[i].Files {
			if recs[i].Files[j].Name != "popular.shared.rarethree.iso" {
				t.Fatalf("record %d source shared list mutated: %q", i, recs[i].Files[j].Name)
			}
		}
	}
}

// TestAuditErrorNamesOffendingRecord: audit failures identify the
// record by stream index, honeypot, field and value.
func TestAuditErrorNamesOffendingRecord(t *testing.T) {
	recs := []logging.Record{
		{Honeypot: "hp-0", PeerIP: "42"},
		{Honeypot: "hp-7", PeerIP: "192.0.2.55"},
	}
	err := Audit(recs)
	if err == nil {
		t.Fatal("raw address passed the audit")
	}
	var ae *AuditError
	if !errors.As(err, &ae) {
		t.Fatalf("audit error is %T, want *AuditError", err)
	}
	if ae.Index != 1 || ae.Honeypot != "hp-7" || ae.Field != "peer_ip" || ae.Value != "192.0.2.55" {
		t.Fatalf("AuditError = %+v", ae)
	}
	for _, want := range []string{"record 1", "hp-7", "peer_ip", "192.0.2.55"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not name %q", err, want)
		}
	}

	// The streaming verifier reports the same identification.
	_, serr := drainAll(t, AuditIter(logging.NewSliceIter(recs)))
	var sae *AuditError
	if !errors.As(serr, &sae) {
		t.Fatalf("stream audit error is %T, want *AuditError", serr)
	}
	if *sae != *ae {
		t.Fatalf("stream AuditError %+v differs from slice %+v", sae, ae)
	}
}

// TestAuditIterPassThrough: clean records flow unchanged.
func TestAuditIterPassThrough(t *testing.T) {
	recs := []logging.Record{{PeerIP: "0"}, {PeerIP: ""}, {PeerIP: "12"}}
	got, err := drainAll(t, AuditIter(logging.NewSliceIter(recs)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatal("audit stage altered records")
	}
}
