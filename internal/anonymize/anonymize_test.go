package anonymize

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/logging"
)

func TestHashIPStableAndKeyed(t *testing.T) {
	a := NewIPHasher([]byte("campaign-secret"))
	b := NewIPHasher([]byte("campaign-secret"))
	c := NewIPHasher([]byte("other-secret"))
	ip := netip.MustParseAddr("192.0.2.7")
	if a.HashIP(ip) != b.HashIP(ip) {
		t.Error("same key must hash identically (step 2 depends on it)")
	}
	if a.HashIP(ip) == c.HashIP(ip) {
		t.Error("different keys must hash differently")
	}
	if a.HashIP(ip) == a.HashIP(netip.MustParseAddr("192.0.2.8")) {
		t.Error("different IPs must hash differently")
	}
	if len(a.HashIP(ip)) != 16 {
		t.Errorf("hash length %d", len(a.HashIP(ip)))
	}
}

func TestHashIPDoesNotRevealAddress(t *testing.T) {
	h := NewIPHasher([]byte("s"))
	ip := netip.MustParseAddr("203.0.113.99")
	out := h.HashIP(ip)
	if strings.Contains(out, "203") && strings.Contains(out, "113") {
		// Extremely unlikely by chance; mostly a tripwire for accidental
		// plain-text implementations.
		t.Errorf("hash %q suspiciously contains address fragments", out)
	}
	if _, err := netip.ParseAddr(out); err == nil {
		t.Error("hash parses as an IP address")
	}
}

func TestRenumbererFirstAppearanceOrder(t *testing.T) {
	r := NewRenumberer()
	if r.Number("aaa") != 0 || r.Number("bbb") != 1 || r.Number("aaa") != 0 || r.Number("ccc") != 2 {
		t.Error("numbering must follow first appearance")
	}
	if r.Count() != 3 {
		t.Errorf("Count = %d", r.Count())
	}
}

func TestRenumberRecordsCoherentAcrossHoneypots(t *testing.T) {
	h := NewIPHasher([]byte("secret"))
	ipA := h.HashIP(netip.MustParseAddr("10.1.1.1"))
	ipB := h.HashIP(netip.MustParseAddr("10.2.2.2"))
	log1 := []logging.Record{{PeerIP: ipA, Honeypot: "hp-0"}, {PeerIP: ipB, Honeypot: "hp-0"}}
	log2 := []logging.Record{{PeerIP: ipB, Honeypot: "hp-1"}, {PeerIP: ipA, Honeypot: "hp-1"}}

	r := NewRenumberer()
	merged := append(append([]logging.Record{}, log1...), log2...)
	n := r.RenumberRecords(merged)
	if n != 2 {
		t.Fatalf("distinct peers = %d", n)
	}
	// Same original IP must map to the same number in both honeypot logs.
	if merged[0].PeerIP != merged[3].PeerIP {
		t.Errorf("ipA numbered %s and %s", merged[0].PeerIP, merged[3].PeerIP)
	}
	if merged[1].PeerIP != merged[2].PeerIP {
		t.Errorf("ipB numbered %s and %s", merged[1].PeerIP, merged[2].PeerIP)
	}
	if merged[0].PeerIP != "0" {
		t.Errorf("first peer numbered %s", merged[0].PeerIP)
	}
}

func TestRenumberSkipsEmpty(t *testing.T) {
	r := NewRenumberer()
	recs := []logging.Record{{PeerIP: ""}}
	if n := r.RenumberRecords(recs); n != 0 {
		t.Errorf("count = %d", n)
	}
	if recs[0].PeerIP != "" {
		t.Error("empty PeerIP must stay empty")
	}
}

func TestSplitWordsAlternation(t *testing.T) {
	parts := splitWords("some.movie (2008)-final.avi")
	rebuilt := strings.Join(parts, "")
	if rebuilt != "some.movie (2008)-final.avi" {
		t.Errorf("split/join not lossless: %q", rebuilt)
	}
	for i, p := range parts {
		if p == "" {
			continue
		}
		wantWord := i%2 == 0
		if isWordRune(rune(p[0])) != wantWord {
			t.Errorf("part %d %q in wrong position", i, p)
		}
	}
}

func TestNameAnonymizerThreshold(t *testing.T) {
	a := NewNameAnonymizer(2)
	names := []string{
		"common.rareone.avi",
		"common.raretwo.avi",
		"common.common.mp3",
	}
	for _, n := range names {
		a.Observe(n)
	}
	// "common" appears 4 times, "avi" twice, "rareone"/"raretwo"/"mp3" once.
	got := a.Anonymize("common.rareone.avi")
	if !strings.HasPrefix(got, "common.") {
		t.Errorf("frequent word replaced: %q", got)
	}
	if strings.Contains(got, "rareone") {
		t.Errorf("rare word kept: %q", got)
	}
	if !strings.HasSuffix(got, ".avi") {
		t.Errorf("avi (freq 2) should be kept: %q", got)
	}
	// Coherence: the same rare word maps to the same token.
	if a.Anonymize("common.rareone.avi") != got {
		t.Error("anonymization not deterministic")
	}
	// Distinct rare words map to distinct tokens.
	other := a.Anonymize("common.raretwo.avi")
	if other == got {
		t.Error("distinct rare words collided")
	}
	if a.ReplacedWords() != 2 {
		t.Errorf("ReplacedWords = %d", a.ReplacedWords())
	}
}

func TestNameAnonymizerCaseInsensitive(t *testing.T) {
	a := NewNameAnonymizer(2)
	a.Observe("Word.x")
	a.Observe("word.y")
	if got := a.Anonymize("Word.x"); !strings.HasPrefix(got, "Word") {
		t.Errorf("case-insensitive counting failed: %q", got)
	}
}

func TestAnonymizeRecordNames(t *testing.T) {
	recs := []logging.Record{
		{FileName: "popular.secret1.avi"},
		{FileName: "popular.secret2.avi"},
		{Files: []logging.SharedFile{{Name: "popular.secret3.avi"}}},
	}
	AnonymizeRecordNames(recs, 3)
	for i, want := range []string{"secret1", "secret2"} {
		if strings.Contains(recs[i].FileName, want) {
			t.Errorf("record %d still contains %q: %q", i, want, recs[i].FileName)
		}
		if !strings.Contains(recs[i].FileName, "popular") {
			t.Errorf("record %d lost frequent word: %q", i, recs[i].FileName)
		}
	}
	if strings.Contains(recs[2].Files[0].Name, "secret3") {
		t.Errorf("shared list name not anonymized: %q", recs[2].Files[0].Name)
	}
}

func TestAuditCatchesRawIPs(t *testing.T) {
	bad := []logging.Record{{PeerIP: "192.0.2.55"}}
	if err := Audit(bad); err == nil {
		t.Error("raw IPv4 must fail audit")
	}
	bad6 := []logging.Record{{PeerIP: "2001:db8::1"}}
	if err := Audit(bad6); err == nil {
		t.Error("raw IPv6 must fail audit")
	}
	weird := []logging.Record{{PeerIP: "not-an-ip-nor-hash"}}
	if err := Audit(weird); err == nil {
		t.Error("unclassifiable PeerIP must fail audit")
	}
}

func TestAuditAcceptsPipelineOutput(t *testing.T) {
	h := NewIPHasher([]byte("k"))
	recs := []logging.Record{
		{PeerIP: h.HashIP(netip.MustParseAddr("10.0.0.1"))},
		{PeerIP: ""},
	}
	if err := Audit(recs); err != nil {
		t.Errorf("hashed records must pass: %v", err)
	}
	NewRenumberer().RenumberRecords(recs)
	if err := Audit(recs); err != nil {
		t.Errorf("renumbered records must pass: %v", err)
	}
}

// Property: the full two-step pipeline is injective per campaign — two
// addresses get the same final number iff they are the same address.
func TestQuickPipelineInjective(t *testing.T) {
	h := NewIPHasher([]byte("prop"))
	r := NewRenumberer()
	seen := map[string]string{} // number -> address
	f := func(a, b, c, d byte) bool {
		ip := netip.AddrFrom4([4]byte{a, b, c, d})
		n := strconv.Itoa(r.Number(h.HashIP(ip)))
		if prev, ok := seen[n]; ok {
			return prev == ip.String()
		}
		seen[n] = ip.String()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// Property: name anonymization never leaks a below-threshold word.
func TestQuickNoRareWordSurvives(t *testing.T) {
	f := func(words []string) bool {
		a := NewNameAnonymizer(2)
		var names []string
		for i, w := range words {
			name := fmt.Sprintf("unique%dzz%s.ext", i, sanitize(w))
			names = append(names, name)
			a.Observe(name)
		}
		for i, n := range names {
			got := a.Anonymize(n)
			if strings.Contains(got, fmt.Sprintf("unique%dzz", i)) {
				return false // each uniqueNzz... word appears once, must go
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		if isWordRune(r) && r < 0x80 {
			b.WriteRune(r)
		}
	}
	return b.String()
}

func BenchmarkHashIP(b *testing.B) {
	h := NewIPHasher([]byte("campaign"))
	ip := netip.MustParseAddr("198.51.100.23")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.HashIP(ip)
	}
}

func BenchmarkRenumber100k(b *testing.B) {
	recs := make([]logging.Record, 100_000)
	h := NewIPHasher([]byte("x"))
	for i := range recs {
		ip := netip.AddrFrom4([4]byte{byte(i >> 16), byte(i >> 8), byte(i), 1})
		recs[i].PeerIP = h.HashIP(ip)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := make([]logging.Record, len(recs))
		copy(cp, recs)
		NewRenumberer().RenumberRecords(cp)
	}
}
