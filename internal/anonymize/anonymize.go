// Package anonymize implements the paper's privacy pipeline (its §III-C):
//
//  1. Each honeypot encodes peer IP addresses with a keyed one-way hash
//     before anything is written to disk or sent to the manager. The key
//     is shared campaign-wide so the same address hashes identically at
//     every honeypot, which step 2 requires.
//  2. The manager replaces each hash value — coherently across all
//     honeypot logs — by a small integer in order of first appearance,
//     defeating the 2^32 dictionary attack the paper warns about.
//
// Additionally, file names are anonymized by replacing every word that
// appears less often than a threshold with an integer token, following
// the paper's filename anonymization rule.
package anonymize

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/netip"
	"strconv"
	"strings"

	"repro/internal/logging"
)

// IPHasher is the step-1 anonymizer held by each honeypot.
type IPHasher struct {
	key []byte
}

// NewIPHasher builds a hasher from the campaign secret. Every honeypot of
// a campaign must receive the same secret.
func NewIPHasher(secret []byte) *IPHasher {
	key := make([]byte, len(secret))
	copy(key, secret)
	return &IPHasher{key: key}
}

// HashIP returns the anonymized form of addr: the first 16 hex characters
// of HMAC-SHA256(key, addr). One-way, keyed, and stable campaign-wide.
func (h *IPHasher) HashIP(addr netip.Addr) string {
	mac := hmac.New(sha256.New, h.key)
	b := addr.As16()
	mac.Write(b[:])
	return hex.EncodeToString(mac.Sum(nil))[:16]
}

// Renumberer is the manager's step-2 pass: hash values become integers in
// first-appearance order, coherently across all logs fed to it.
type Renumberer struct {
	m map[string]int
}

// NewRenumberer returns an empty renumberer.
func NewRenumberer() *Renumberer {
	return &Renumberer{m: make(map[string]int)}
}

// Number returns the integer assigned to hash, allocating the next one on
// first sight.
func (r *Renumberer) Number(hash string) int {
	if n, ok := r.m[hash]; ok {
		return n
	}
	n := len(r.m)
	r.m[hash] = n
	return n
}

// Count returns how many distinct hashes were seen.
func (r *Renumberer) Count() int { return len(r.m) }

// RenumberRecords rewrites PeerIP in place from step-1 hashes to step-2
// integers (decimal strings), and returns the number of distinct peers.
// Records must already carry hashed (never raw) addresses.
func (r *Renumberer) RenumberRecords(recs []logging.Record) int {
	for i := range recs {
		if recs[i].PeerIP == "" {
			continue
		}
		recs[i].PeerIP = strconv.Itoa(r.Number(recs[i].PeerIP))
	}
	return r.Count()
}

// ---------------------------------------------------------------------------
// Filename anonymization.

// NameAnonymizer replaces rare words in file names with integer tokens.
type NameAnonymizer struct {
	threshold int
	freq      map[string]int
	mapping   map[string]string
	next      int
}

// NewNameAnonymizer builds an anonymizer replacing words occurring fewer
// than threshold times.
func NewNameAnonymizer(threshold int) *NameAnonymizer {
	return &NameAnonymizer{
		threshold: threshold,
		freq:      make(map[string]int),
		mapping:   make(map[string]string),
	}
}

// splitWords cuts a file name into alternating word and separator runs,
// starting with a (possibly empty) word.
func splitWords(name string) []string {
	var parts []string
	cur := strings.Builder{}
	isWord := true
	for _, r := range name {
		w := isWordRune(r)
		if w != isWord {
			parts = append(parts, cur.String())
			cur.Reset()
			isWord = w
		}
		cur.WriteRune(r)
	}
	parts = append(parts, cur.String())
	return parts
}

func isWordRune(r rune) bool {
	return r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r >= 0x80
}

// Observe counts the words of one file name. All names must be observed
// before any call to Anonymize so frequencies are corpus-wide.
func (a *NameAnonymizer) Observe(name string) {
	for i, p := range splitWords(name) {
		if i%2 == 0 && p != "" { // word positions
			a.freq[strings.ToLower(p)]++
		}
	}
}

// Anonymize rewrites a name, replacing below-threshold words coherently.
func (a *NameAnonymizer) Anonymize(name string) string {
	parts := splitWords(name)
	var b strings.Builder
	for i, p := range parts {
		if i%2 == 1 || p == "" {
			b.WriteString(p)
			continue
		}
		key := strings.ToLower(p)
		if a.freq[key] >= a.threshold {
			b.WriteString(p)
			continue
		}
		repl, ok := a.mapping[key]
		if !ok {
			repl = strconv.Itoa(a.next)
			a.next++
			a.mapping[key] = repl
		}
		b.WriteString(repl)
	}
	return b.String()
}

// ReplacedWords returns how many distinct words were replaced so far.
func (a *NameAnonymizer) ReplacedWords() int { return len(a.mapping) }

// AnonymizeRecordNames applies filename anonymization to every name in
// the record set (FileName fields and shared-list entries), with corpus
// frequencies computed over the whole set first.
func AnonymizeRecordNames(recs []logging.Record, threshold int) *NameAnonymizer {
	a := NewNameAnonymizer(threshold)
	for i := range recs {
		if recs[i].FileName != "" {
			a.Observe(recs[i].FileName)
		}
		for _, f := range recs[i].Files {
			a.Observe(f.Name)
		}
	}
	for i := range recs {
		if recs[i].FileName != "" {
			recs[i].FileName = a.Anonymize(recs[i].FileName)
		}
		for j := range recs[i].Files {
			recs[i].Files[j].Name = a.Anonymize(recs[i].Files[j].Name)
		}
	}
	return a
}

// ---------------------------------------------------------------------------
// Audit.

// Audit verifies no raw IP address survived anonymization: it fails if
// any PeerIP field parses as an IP address or is neither a step-1 hash
// (16 hex chars) nor a step-2 integer.
func Audit(recs []logging.Record) error {
	for i := range recs {
		ip := recs[i].PeerIP
		if ip == "" {
			continue
		}
		if _, err := netip.ParseAddr(ip); err == nil {
			return fmt.Errorf("anonymize: record %d leaks raw address %q", i, ip)
		}
		if !looksHashed(ip) && !looksNumbered(ip) {
			return fmt.Errorf("anonymize: record %d PeerIP %q is neither hashed nor renumbered", i, ip)
		}
	}
	return nil
}

func looksHashed(s string) bool {
	if len(s) != 16 {
		return false
	}
	_, err := hex.DecodeString(s)
	return err == nil
}

func looksNumbered(s string) bool {
	_, err := strconv.Atoi(s)
	return err == nil
}
