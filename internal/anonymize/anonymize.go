// Package anonymize implements the paper's privacy pipeline (its §III-C)
// as composable streaming stages over logging.Iterator, so the published
// dataset of an arbitrarily large campaign is produced without ever
// holding the merged log in memory:
//
//  1. Each honeypot encodes peer IP addresses with a keyed one-way hash
//     (IPHasher) before anything is written to disk or sent to the
//     manager. The key is shared campaign-wide so the same address hashes
//     identically at every honeypot, which step 2 requires.
//  2. The manager replaces each hash value — coherently across all
//     honeypot logs — by a small integer in order of first appearance
//     (Renumberer.RenumberIter, a stateful single-pass map stage),
//     defeating the 2^32 dictionary attack the paper warns about.
//  3. File names are anonymized by replacing every word that appears less
//     often than a threshold with an integer token (NameAnonymizer), an
//     explicitly two-pass stage: ObserveIter counts corpus-wide word
//     frequencies over one pass of a re-iterable source, AnonymizeIter
//     rewrites names on the second pass. State is O(distinct words).
//  4. AuditIter is a pass-through verifier: records flow unchanged while
//     every PeerIP is checked for address leaks; a failure aborts the
//     stream with an AuditError naming the offending record.
//
// The slice-based entry points (RenumberRecords, AnonymizeRecordNames,
// Audit) remain for in-memory datasets and tests; they run the same
// stages over a slice iterator.
package anonymize

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/netip"
	"strconv"
	"strings"

	"repro/internal/logging"
)

// IPHasher is the step-1 anonymizer held by each honeypot.
type IPHasher struct {
	key []byte
}

// NewIPHasher builds a hasher from the campaign secret. Every honeypot of
// a campaign must receive the same secret.
func NewIPHasher(secret []byte) *IPHasher {
	key := make([]byte, len(secret))
	copy(key, secret)
	return &IPHasher{key: key}
}

// HashIP returns the anonymized form of addr: the first 16 hex characters
// of HMAC-SHA256(key, addr). One-way, keyed, and stable campaign-wide.
func (h *IPHasher) HashIP(addr netip.Addr) string {
	mac := hmac.New(sha256.New, h.key)
	b := addr.As16()
	mac.Write(b[:])
	return hex.EncodeToString(mac.Sum(nil))[:16]
}

// Renumberer is the manager's step-2 pass: hash values become integers in
// first-appearance order, coherently across all logs fed to it.
type Renumberer struct {
	m map[string]int
}

// NewRenumberer returns an empty renumberer.
func NewRenumberer() *Renumberer {
	return &Renumberer{m: make(map[string]int)}
}

// Number returns the integer assigned to hash, allocating the next one on
// first sight.
func (r *Renumberer) Number(hash string) int {
	if n, ok := r.m[hash]; ok {
		return n
	}
	n := len(r.m)
	r.m[hash] = n
	return n
}

// Count returns how many distinct hashes were seen.
func (r *Renumberer) Count() int { return len(r.m) }

// RenumberIter is the streaming step-2 stage: records flow through with
// PeerIP rewritten from step-1 hashes to first-appearance integers
// (decimal strings). The renumberer's state — one map entry per distinct
// peer, never per record — accumulates across everything streamed, so one
// Renumberer keeps the numbering coherent over all of a campaign's logs.
// Count is final once the stream is drained.
func (r *Renumberer) RenumberIter(src logging.Iterator) logging.Iterator {
	return logging.Map(src, func(rec *logging.Record) error {
		if rec.PeerIP != "" {
			rec.PeerIP = strconv.Itoa(r.Number(rec.PeerIP))
		}
		return nil
	})
}

// RenumberRecords rewrites PeerIP in place from step-1 hashes to step-2
// integers (decimal strings), and returns the number of distinct peers.
// Records must already carry hashed (never raw) addresses.
func (r *Renumberer) RenumberRecords(recs []logging.Record) int {
	for i := range recs {
		if recs[i].PeerIP == "" {
			continue
		}
		recs[i].PeerIP = strconv.Itoa(r.Number(recs[i].PeerIP))
	}
	return r.Count()
}

// ---------------------------------------------------------------------------
// Filename anonymization.

// NameAnonymizer replaces rare words in file names with integer tokens.
// It is a two-pass stage: frequencies must be corpus-wide, so every name
// is observed (pass 1) before any name is rewritten (pass 2).
type NameAnonymizer struct {
	threshold int
	freq      map[string]int
	mapping   map[string]string
	next      int
}

// NewNameAnonymizer builds an anonymizer replacing words occurring fewer
// than threshold times.
func NewNameAnonymizer(threshold int) *NameAnonymizer {
	return &NameAnonymizer{
		threshold: threshold,
		freq:      make(map[string]int),
		mapping:   make(map[string]string),
	}
}

// splitWords cuts a file name into alternating word and separator runs,
// starting with a (possibly empty) word.
func splitWords(name string) []string {
	var parts []string
	cur := strings.Builder{}
	isWord := true
	for _, r := range name {
		w := isWordRune(r)
		if w != isWord {
			parts = append(parts, cur.String())
			cur.Reset()
			isWord = w
		}
		cur.WriteRune(r)
	}
	parts = append(parts, cur.String())
	return parts
}

func isWordRune(r rune) bool {
	return r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r >= 0x80
}

// Observe counts the words of one file name. All names must be observed
// before any call to Anonymize so frequencies are corpus-wide.
func (a *NameAnonymizer) Observe(name string) {
	for i, p := range splitWords(name) {
		if i%2 == 0 && p != "" { // word positions
			a.freq[strings.ToLower(p)]++
		}
	}
}

// ObserveIter is pass 1 of the streaming stage: it drains src, counting
// the word frequencies of every file name (FileName fields and
// shared-list entries). Memory is one counter per distinct word.
func (a *NameAnonymizer) ObserveIter(src logging.Iterator) error {
	return logging.Each(src, func(r *logging.Record) error {
		if r.FileName != "" {
			a.Observe(r.FileName)
		}
		for _, f := range r.Files {
			a.Observe(f.Name)
		}
		return nil
	})
}

// Anonymize rewrites a name, replacing below-threshold words coherently.
func (a *NameAnonymizer) Anonymize(name string) string {
	parts := splitWords(name)
	var b strings.Builder
	for i, p := range parts {
		if i%2 == 1 || p == "" {
			b.WriteString(p)
			continue
		}
		key := strings.ToLower(p)
		if a.freq[key] >= a.threshold {
			b.WriteString(p)
			continue
		}
		repl, ok := a.mapping[key]
		if !ok {
			repl = strconv.Itoa(a.next)
			a.next++
			a.mapping[key] = repl
		}
		b.WriteString(repl)
	}
	return b.String()
}

// AnonymizeIter is pass 2 of the streaming stage: records flow through
// with every file name rewritten under the frequencies ObserveIter
// gathered. Shared-list slices are cloned before rewriting, so the
// source's records are never mutated — a re-iterable source stays
// pristine for further passes.
func (a *NameAnonymizer) AnonymizeIter(src logging.Iterator) logging.Iterator {
	return logging.Map(src, func(r *logging.Record) error {
		if r.FileName != "" {
			r.FileName = a.Anonymize(r.FileName)
		}
		if len(r.Files) > 0 {
			files := make([]logging.SharedFile, len(r.Files))
			copy(files, r.Files)
			for i := range files {
				files[i].Name = a.Anonymize(files[i].Name)
			}
			r.Files = files
		}
		return nil
	})
}

// ReplacedWords returns how many distinct words were replaced so far.
func (a *NameAnonymizer) ReplacedWords() int { return len(a.mapping) }

// AnonymizeRecordNames applies filename anonymization to every name in
// the record set (FileName fields and shared-list entries), with corpus
// frequencies computed over the whole set first.
func AnonymizeRecordNames(recs []logging.Record, threshold int) *NameAnonymizer {
	a := NewNameAnonymizer(threshold)
	if err := a.ObserveIter(logging.NewSliceIter(recs)); err != nil {
		panic("anonymize: slice iterator cannot fail: " + err.Error())
	}
	for i := range recs {
		if recs[i].FileName != "" {
			recs[i].FileName = a.Anonymize(recs[i].FileName)
		}
		for j := range recs[i].Files {
			recs[i].Files[j].Name = a.Anonymize(recs[i].Files[j].Name)
		}
	}
	return a
}

// ---------------------------------------------------------------------------
// Audit.

// AuditError reports exactly which record leaked: its position in the
// merged stream, the collecting honeypot, and the offending field and
// value, so an operator can trace the leak to its source instead of
// re-running the pipeline under a debugger.
type AuditError struct {
	// Index is the record's position in the audited stream (0-based).
	Index int
	// Honeypot is the record's collecting honeypot.
	Honeypot string
	// Field names the leaking record field (e.g. "peer_ip").
	Field string
	// Value is the offending field content.
	Value string
	// Reason says what is wrong with it.
	Reason string
}

// Error implements error.
func (e *AuditError) Error() string {
	return fmt.Sprintf("anonymize: record %d (honeypot %q) field %s = %q %s",
		e.Index, e.Honeypot, e.Field, e.Value, e.Reason)
}

// auditRecord checks one record for address leaks.
func auditRecord(i int, r *logging.Record) *AuditError {
	ip := r.PeerIP
	if ip == "" {
		return nil
	}
	if _, err := netip.ParseAddr(ip); err == nil {
		return &AuditError{Index: i, Honeypot: r.Honeypot, Field: "peer_ip", Value: ip,
			Reason: "leaks a raw address"}
	}
	if !looksHashed(ip) && !looksNumbered(ip) {
		return &AuditError{Index: i, Honeypot: r.Honeypot, Field: "peer_ip", Value: ip,
			Reason: "is neither hashed nor renumbered"}
	}
	return nil
}

// AuditIter is the pass-through verifier stage: records flow through
// unchanged while every one is checked for raw-address leaks; the first
// leak aborts the stream with an *AuditError.
func AuditIter(src logging.Iterator) logging.Iterator {
	i := 0
	return logging.Map(src, func(r *logging.Record) error {
		if err := auditRecord(i, r); err != nil {
			return err
		}
		i++
		return nil
	})
}

// Audit verifies no raw IP address survived anonymization: it fails with
// an *AuditError if any PeerIP field parses as an IP address or is
// neither a step-1 hash (16 hex chars) nor a step-2 integer.
func Audit(recs []logging.Record) error {
	for i := range recs {
		if err := auditRecord(i, &recs[i]); err != nil {
			return err
		}
	}
	return nil
}

func looksHashed(s string) bool {
	if len(s) != 16 {
		return false
	}
	_, err := hex.DecodeString(s)
	return err == nil
}

func looksNumbered(s string) bool {
	_, err := strconv.Atoi(s)
	return err == nil
}
