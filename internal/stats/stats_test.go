package stats

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2008, 10, 1, 0, 0, 0, 0, time.UTC)

func TestBuckets(t *testing.T) {
	b := NewBuckets(t0, time.Hour, 24)
	if !b.Add(t0) {
		t.Error("start instant should land in bucket 0")
	}
	if !b.Add(t0.Add(90 * time.Minute)) {
		t.Error("90min should land in bucket 1")
	}
	if b.Add(t0.Add(-time.Minute)) {
		t.Error("before start must be rejected")
	}
	if b.Add(t0.Add(25 * time.Hour)) {
		t.Error("past end must be rejected")
	}
	if b.Counts[0] != 1 || b.Counts[1] != 1 {
		t.Errorf("counts = %v", b.Counts[:3])
	}
}

func TestDistinctGrowth(t *testing.T) {
	day := 24 * time.Hour
	times := []time.Time{
		t0.Add(1 * time.Hour),  // day 0, peer a
		t0.Add(2 * time.Hour),  // day 0, peer a again
		t0.Add(26 * time.Hour), // day 1, peer b
		t0.Add(27 * time.Hour), // day 1, peer a again
		t0.Add(50 * time.Hour), // day 2, peer c
	}
	keys := []string{"a", "a", "b", "a", "c"}
	g := Distinct(times, keys, t0, day, 3)
	wantNew := []int{1, 1, 1}
	wantCum := []int{1, 2, 3}
	for i := range wantNew {
		if g.New[i] != wantNew[i] || g.Cumulative[i] != wantCum[i] {
			t.Errorf("day %d: new=%d cum=%d", i, g.New[i], g.Cumulative[i])
		}
	}
}

func TestDistinctIgnoresOutOfRange(t *testing.T) {
	g := Distinct(
		[]time.Time{t0.Add(-time.Hour), t0.Add(100 * 24 * time.Hour)},
		[]string{"x", "y"}, t0, 24*time.Hour, 2)
	if g.Cumulative[1] != 0 {
		t.Errorf("out-of-range events counted: %v", g.Cumulative)
	}
}

func TestDistinctPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on length mismatch")
		}
	}()
	Distinct([]time.Time{t0}, nil, t0, time.Hour, 1)
}

func TestUnionEstimateFullSubsetExact(t *testing.T) {
	// 3 units with known overlap; at n=3 every sample is the full union.
	sets := [][]int32{{0, 1, 2}, {2, 3}, {3, 4, 5}}
	r := UnionEstimate(sets, 6, SubsetUnionConfig{Samples: 50, Seed: 1, IncludeZero: true})
	last := len(r.N) - 1
	if r.N[last] != 3 {
		t.Fatalf("last row n=%d", r.N[last])
	}
	if r.Avg[last] != 6 || r.Min[last] != 6 || r.Max[last] != 6 {
		t.Errorf("full union: avg=%v min=%d max=%d", r.Avg[last], r.Min[last], r.Max[last])
	}
	if r.N[0] != 0 || r.Avg[0] != 0 {
		t.Errorf("zero row: n=%d avg=%v", r.N[0], r.Avg[0])
	}
}

func TestUnionEstimateSingleUnitBounds(t *testing.T) {
	sets := [][]int32{{0}, {1, 2}, {3, 4, 5, 6}}
	r := UnionEstimate(sets, 7, SubsetUnionConfig{Samples: 200, Seed: 2})
	// Row for n=1: min over samples should be 1 (smallest unit), max 4.
	if r.N[0] != 1 {
		t.Fatalf("first row n=%d", r.N[0])
	}
	if r.Min[0] != 1 || r.Max[0] != 4 {
		t.Errorf("n=1: min=%d max=%d, want 1 and 4", r.Min[0], r.Max[0])
	}
	if r.Avg[0] < 1 || r.Avg[0] > 4 {
		t.Errorf("n=1 avg=%v out of bounds", r.Avg[0])
	}
}

func TestUnionEstimateMonotoneAvg(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sets := make([][]int32, 10)
	for i := range sets {
		n := 5 + rng.Intn(50)
		for j := 0; j < n; j++ {
			sets[i] = append(sets[i], int32(rng.Intn(300)))
		}
	}
	r := UnionEstimate(sets, 300, SubsetUnionConfig{Samples: 100, Seed: 4, IncludeZero: true})
	for i := 1; i < len(r.Avg); i++ {
		if r.Avg[i] < r.Avg[i-1]-1e-9 {
			t.Errorf("avg not monotone at n=%d: %v < %v", r.N[i], r.Avg[i], r.Avg[i-1])
		}
	}
}

func TestUnionEstimateDeterministicAcrossParallelism(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sets := make([][]int32, 24)
	for i := range sets {
		for j := 0; j < 100+rng.Intn(400); j++ {
			sets[i] = append(sets[i], int32(rng.Intn(5000)))
		}
	}
	a := UnionEstimate(sets, 5000, SubsetUnionConfig{Samples: 100, Seed: 7, Parallel: 1, IncludeZero: true})
	b := UnionEstimate(sets, 5000, SubsetUnionConfig{Samples: 100, Seed: 7, Parallel: 8, IncludeZero: true})
	for i := range a.N {
		if a.Avg[i] != b.Avg[i] || a.Min[i] != b.Min[i] || a.Max[i] != b.Max[i] {
			t.Fatalf("row %d differs between 1 and 8 workers", i)
		}
	}
}

func TestTopKey(t *testing.T) {
	k, n := TopKey([]string{"a", "b", "b", "c", "b", "a"})
	if k != "b" || n != 3 {
		t.Errorf("TopKey = %q/%d", k, n)
	}
	k, n = TopKey(nil)
	if k != "" || n != 0 {
		t.Errorf("empty TopKey = %q/%d", k, n)
	}
	// Tie-break: lexicographically smallest.
	k, _ = TopKey([]string{"z", "y"})
	if k != "y" {
		t.Errorf("tie break = %q", k)
	}
}

func TestMeanQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if Mean(xs) != 2.5 {
		t.Errorf("mean = %v", Mean(xs))
	}
	if Mean(nil) != 0 {
		t.Error("mean of empty")
	}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 4 {
		t.Errorf("quantile extremes: %v %v", Quantile(xs, 0), Quantile(xs, 1))
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("quantile of empty")
	}
}

func TestCumulativeInts(t *testing.T) {
	got := CumulativeInts([]int{1, 2, 3})
	if got[0] != 1 || got[1] != 3 || got[2] != 6 {
		t.Errorf("cumulative = %v", got)
	}
}

// Property: union estimates are bounded by the total universe observed and
// min ≤ avg ≤ max on every row.
func TestQuickUnionBounds(t *testing.T) {
	f := func(seed int64, nUnits uint8) bool {
		units := int(nUnits%12) + 1
		rng := rand.New(rand.NewSource(seed))
		sets := make([][]int32, units)
		universe := 200
		total := map[int32]bool{}
		for i := range sets {
			for j := 0; j < rng.Intn(40); j++ {
				el := int32(rng.Intn(universe))
				sets[i] = append(sets[i], el)
				total[el] = true
			}
		}
		r := UnionEstimate(sets, universe, SubsetUnionConfig{Samples: 20, Seed: seed})
		for i := range r.N {
			if float64(r.Min[i]) > r.Avg[i]+1e-9 || r.Avg[i] > float64(r.Max[i])+1e-9 {
				return false
			}
			if r.Max[i] > len(total) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUnionEstimate24x100(b *testing.B) {
	// Fig 10 workload: 24 honeypots, 100 samples per subset size.
	rng := rand.New(rand.NewSource(1))
	sets := make([][]int32, 24)
	for i := range sets {
		n := 10000 + rng.Intn(20000)
		sets[i] = make([]int32, n)
		for j := range sets[i] {
			sets[i][j] = int32(rng.Intn(110_000))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		UnionEstimate(sets, 110_000, SubsetUnionConfig{Samples: 100, Seed: 9, IncludeZero: true})
	}
}

func BenchmarkUnionEstimateSerialVsParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	sets := make([][]int32, 100)
	for i := range sets {
		n := 500 + rng.Intn(1500)
		sets[i] = make([]int32, n)
		for j := range sets[i] {
			sets[i][j] = int32(rng.Intn(100_000))
		}
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			UnionEstimate(sets, 100_000, SubsetUnionConfig{Samples: 30, Seed: 9, Parallel: 1})
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			UnionEstimate(sets, 100_000, SubsetUnionConfig{Samples: 30, Seed: 9})
		}
	})
}

func TestDenseDistinctMatchesMap(t *testing.T) {
	start := time.Date(2008, 10, 1, 0, 0, 0, 0, time.UTC)
	rng := rand.New(rand.NewSource(11))
	const periods, keys = 9, 40
	m := NewDistinctTracker(start, time.Hour, periods)
	d := NewDenseDistinctTracker(start, time.Hour, periods, keys/2) // force growth
	for i := 0; i < 2000; i++ {
		k := rng.Intn(keys)
		ts := start.Add(time.Duration(rng.Intn(periods*70)-30) * time.Minute)
		m.Observe(ts, fmt.Sprint(k))
		d.Observe(ts, k)
	}
	if got, want := d.Curve(), m.Curve(); !reflect.DeepEqual(got, want) {
		t.Errorf("dense tracker diverges:\n got %+v\nwant %+v", got, want)
	}
}

// naiveUnion mirrors UnionEstimate with a freshly initialized identity
// permutation per sample — the behavior the swap-undo optimization must
// reproduce exactly, RNG stream included.
func naiveUnion(sets [][]int32, universe int, cfg SubsetUnionConfig) SubsetUnion {
	nUnits := len(sets)
	lo := 1
	if cfg.IncludeZero {
		lo = 0
	}
	var out SubsetUnion
	for n := lo; n <= nUnits; n++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(n)*1_000_003))
		sum, minU, maxU := 0.0, -1, -1
		for s := 0; s < cfg.Samples; s++ {
			perm := make([]int, nUnits)
			for i := range perm {
				perm[i] = i
			}
			for i := 0; i < n; i++ {
				k := i + rng.Intn(nUnits-i)
				perm[i], perm[k] = perm[k], perm[i]
			}
			seen := map[int32]bool{}
			for i := 0; i < n; i++ {
				for _, el := range sets[perm[i]] {
					seen[el] = true
				}
			}
			u := len(seen)
			sum += float64(u)
			if minU < 0 || u < minU {
				minU = u
			}
			if u > maxU {
				maxU = u
			}
		}
		if n == 0 {
			minU, maxU = 0, 0
		}
		out.N = append(out.N, n)
		out.Avg = append(out.Avg, sum/float64(cfg.Samples))
		out.Min = append(out.Min, minU)
		out.Max = append(out.Max, maxU)
	}
	return out
}

func TestUnionEstimateMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const units, universe = 9, 120
	sets := make([][]int32, units)
	for u := range sets {
		seen := map[int32]bool{}
		for i := rng.Intn(40); i > 0; i-- {
			seen[int32(rng.Intn(universe))] = true
		}
		for n := range seen {
			sets[u] = append(sets[u], n)
		}
	}
	cfg := SubsetUnionConfig{Samples: 25, Seed: 3, IncludeZero: true}
	got := UnionEstimate(sets, universe, cfg)
	want := naiveUnion(sets, universe, cfg)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("UnionEstimate diverged from per-sample reinit reference:\n got %+v\nwant %+v", got, want)
	}
}
