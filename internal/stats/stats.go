// Package stats provides the statistical machinery behind the paper's
// evaluation: time-bucketed series, distinct-over-time growth curves, and
// the random-subset union estimator of Figures 10–12 (sample 100 random
// subsets of n units, report average/min/max of the union of peers they
// observed), parallelized across subset sizes.
package stats

import (
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Buckets counts events into fixed-width time buckets.
type Buckets struct {
	Start  time.Time
	Width  time.Duration
	Counts []int
}

// NewBuckets creates n buckets of the given width starting at start.
func NewBuckets(start time.Time, width time.Duration, n int) *Buckets {
	return &Buckets{Start: start, Width: width, Counts: make([]int, n)}
}

// Add counts one event at t; events outside the covered range are ignored
// and reported false.
func (b *Buckets) Add(t time.Time) bool {
	i := b.Index(t)
	if i < 0 || i >= len(b.Counts) {
		return false
	}
	b.Counts[i]++
	return true
}

// Index returns the bucket index of t (possibly out of range).
func (b *Buckets) Index(t time.Time) int {
	d := t.Sub(b.Start)
	if d < 0 {
		return -1
	}
	return int(d / b.Width)
}

// GrowthCurve is a distinct-over-time series: for each period, the
// cumulative number of distinct keys seen so far and the number first seen
// in that period. This is exactly the pair plotted by the paper's
// Figures 2 and 3.
type GrowthCurve struct {
	// Cumulative[i] is the number of distinct keys observed in periods 0..i.
	Cumulative []int
	// New[i] is the number of keys first observed in period i.
	New []int
}

// DistinctTracker accumulates a GrowthCurve one event at a time — the
// streaming core of Distinct. Feeding it from a disk-backed record
// iterator costs one map entry per distinct key, never one per event.
type DistinctTracker struct {
	start     time.Time
	width     time.Duration
	periods   int
	firstSeen map[string]int
}

// NewDistinctTracker tracks distinct keys over periods buckets of the
// given width starting at start.
func NewDistinctTracker(start time.Time, width time.Duration, periods int) *DistinctTracker {
	return &DistinctTracker{start: start, width: width, periods: periods, firstSeen: make(map[string]int)}
}

// Observe records one event; events outside the covered range are
// ignored.
func (d *DistinctTracker) Observe(t time.Time, key string) {
	if t.Before(d.start) {
		return // negative durations truncate toward 0, not down
	}
	p := int(t.Sub(d.start) / d.width)
	if p >= d.periods {
		return
	}
	if prev, ok := d.firstSeen[key]; !ok || p < prev {
		d.firstSeen[key] = p
	}
}

// Curve extracts the growth curve accumulated so far.
func (d *DistinctTracker) Curve() GrowthCurve {
	g := GrowthCurve{Cumulative: make([]int, d.periods), New: make([]int, d.periods)}
	for _, p := range d.firstSeen {
		g.New[p]++
	}
	run := 0
	for i := 0; i < d.periods; i++ {
		run += g.New[i]
		g.Cumulative[i] = run
	}
	return g
}

// DenseDistinctTracker is DistinctTracker for dense integer keys — the
// interned IDs of the columnar analysis frame. First-seen periods live
// in a flat array indexed by key, so Observe is hash- and
// allocation-free; memory is O(distinct keys), never O(events).
type DenseDistinctTracker struct {
	startNs int64
	widthNs int64
	periods int
	first   []int32 // first-seen period per key, -1 = unseen
}

// NewDenseDistinctTracker tracks keys in [0, keys) over periods buckets
// of the given width starting at start. Observing a key ≥ keys grows the
// array.
func NewDenseDistinctTracker(start time.Time, width time.Duration, periods, keys int) *DenseDistinctTracker {
	d := &DenseDistinctTracker{
		startNs: start.UnixNano(),
		widthNs: int64(width),
		periods: periods,
	}
	d.grow(keys)
	return d
}

func (d *DenseDistinctTracker) grow(keys int) {
	for len(d.first) < keys {
		d.first = append(d.first, -1)
	}
}

// ObserveNano records one event at the given unix-nano timestamp;
// events outside the covered range are ignored.
func (d *DenseDistinctTracker) ObserveNano(ns int64, key int) {
	if ns < d.startNs {
		return
	}
	p := (ns - d.startNs) / d.widthNs
	if p >= int64(d.periods) {
		return
	}
	if key >= len(d.first) {
		d.grow(key + 1)
	}
	if prev := d.first[key]; prev < 0 || int32(p) < prev {
		d.first[key] = int32(p)
	}
}

// Observe is ObserveNano for a time.Time.
func (d *DenseDistinctTracker) Observe(t time.Time, key int) {
	d.ObserveNano(t.UnixNano(), key)
}

// Curve extracts the growth curve accumulated so far.
func (d *DenseDistinctTracker) Curve() GrowthCurve {
	g := GrowthCurve{Cumulative: make([]int, d.periods), New: make([]int, d.periods)}
	for _, p := range d.first {
		if p >= 0 {
			g.New[p]++
		}
	}
	run := 0
	for i := 0; i < d.periods; i++ {
		run += g.New[i]
		g.Cumulative[i] = run
	}
	return g
}

// Distinct computes a GrowthCurve over events (time, key). Events outside
// [start, start+periods*width) are ignored.
func Distinct(times []time.Time, keys []string, start time.Time, width time.Duration, periods int) GrowthCurve {
	if len(times) != len(keys) {
		panic("stats: times and keys length mismatch")
	}
	d := DistinctTracker{
		start: start, width: width, periods: periods,
		firstSeen: make(map[string]int, len(keys)/4+1),
	}
	for i, t := range times {
		d.Observe(t, keys[i])
	}
	return d.Curve()
}

// SubsetUnion is the result of the random-subset union estimator.
type SubsetUnion struct {
	// N[i] is the subset size of row i (0..len(sets) or 1..len(sets)).
	N []int
	// Avg, Min, Max are the union sizes over the drawn samples.
	Avg []float64
	Min []int
	Max []int
}

// SubsetUnionConfig tunes the estimator.
type SubsetUnionConfig struct {
	// Samples is the number of random subsets drawn per size (the paper
	// uses 100).
	Samples int
	// Seed makes the estimate reproducible.
	Seed int64
	// IncludeZero adds the n=0 row (used by Fig 10, not by Fig 11/12).
	IncludeZero bool
	// Parallel bounds worker goroutines; 0 means GOMAXPROCS.
	Parallel int
}

// UnionEstimate runs the estimator: sets[u] lists the element IDs observed
// by unit u (a honeypot for Fig 10, an advertised file for Figs 11–12);
// element IDs must be dense non-negative ints (the step-2 renumbering
// provides exactly that). Elements outside [0, universe) are ignored
// rather than crashing the scratch indexing — malformed identifiers
// (e.g. a negative decimal that leaked past anonymization) simply don't
// count toward unions. For each subset size n it draws cfg.Samples
// random subsets of units and reports average, minimum and maximum union
// cardinality.
//
// Subset sizes are processed in parallel; the per-(n, sample) RNG streams
// are derived deterministically, so results do not depend on scheduling.
func UnionEstimate(sets [][]int32, universe int, cfg SubsetUnionConfig) SubsetUnion {
	if cfg.Samples <= 0 {
		cfg.Samples = 100
	}
	nUnits := len(sets)
	lo := 1
	if cfg.IncludeZero {
		lo = 0
	}
	var rows []int
	for n := lo; n <= nUnits; n++ {
		rows = append(rows, n)
	}
	out := SubsetUnion{
		N:   rows,
		Avg: make([]float64, len(rows)),
		Min: make([]int, len(rows)),
		Max: make([]int, len(rows)),
	}

	workers := cfg.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(rows) {
		workers = len(rows)
	}
	if workers < 1 {
		workers = 1
	}

	type job struct{ row, n int }
	jobs := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Epoch-stamped scratch: mark[i] == stamp means element i is in
			// the current union. Reused across samples without clearing.
			mark := make([]int32, universe)
			stamp := int32(0)
			// perm is kept as the identity permutation between samples:
			// the partial Fisher-Yates below records its swaps and undoes
			// them afterwards, so each sample touches O(n) entries instead
			// of re-initializing all nUnits.
			perm := make([]int, nUnits)
			for i := range perm {
				perm[i] = i
			}
			swaps := make([]int, nUnits)
			for j := range jobs {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(j.n)*1_000_003))
				sum := 0.0
				minU, maxU := -1, -1
				for s := 0; s < cfg.Samples; s++ {
					stamp++
					// Partial Fisher-Yates: the first j.n entries are the sample.
					for i := 0; i < j.n; i++ {
						k := i + rng.Intn(nUnits-i)
						perm[i], perm[k] = perm[k], perm[i]
						swaps[i] = k
					}
					union := 0
					for i := 0; i < j.n; i++ {
						for _, el := range sets[perm[i]] {
							if el < 0 || int(el) >= universe {
								continue
							}
							if mark[el] != stamp {
								mark[el] = stamp
								union++
							}
						}
					}
					// Undo the swaps in reverse to restore the identity.
					for i := j.n - 1; i >= 0; i-- {
						k := swaps[i]
						perm[i], perm[k] = perm[k], perm[i]
					}
					sum += float64(union)
					if minU < 0 || union < minU {
						minU = union
					}
					if union > maxU {
						maxU = union
					}
				}
				if j.n == 0 {
					minU, maxU = 0, 0
				}
				out.Avg[j.row] = sum / float64(cfg.Samples)
				out.Min[j.row] = minU
				out.Max[j.row] = maxU
			}
		}()
	}
	for i, n := range rows {
		jobs <- job{row: i, n: n}
	}
	close(jobs)
	wg.Wait()
	return out
}

// TopKey returns the key with the most events and its count; ties break
// toward the lexicographically smallest key for determinism.
func TopKey(keys []string) (string, int) {
	counts := make(map[string]int, len(keys)/4+1)
	for _, k := range keys {
		counts[k]++
	}
	best, bestN := "", -1
	for k, n := range counts {
		if n > bestN || (n == bestN && k < best) {
			best, bestN = k, n
		}
	}
	if bestN < 0 {
		bestN = 0
	}
	return best, bestN
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using nearest-rank on a
// sorted copy.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	i := int(q * float64(len(cp)-1))
	if i < 0 {
		i = 0
	}
	if i >= len(cp) {
		i = len(cp) - 1
	}
	return cp[i]
}

// CumulativeInts turns per-period counts into a running total.
func CumulativeInts(xs []int) []int {
	out := make([]int, len(xs))
	run := 0
	for i, x := range xs {
		run += x
		out[i] = run
	}
	return out
}
