package wire

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/ed2k"
)

// FuzzReader feeds arbitrary byte streams to the frame reader in both
// protocol spaces: it must never panic and never return a message AND an
// error simultaneously. Runs its seed corpus under plain `go test`.
func FuzzReader(f *testing.F) {
	// Seeds: valid frames of assorted messages, plus mutations.
	seeds := []Message{
		&GetSources{Hash: ed2k.SyntheticHash("a")},
		&LoginRequest{UserHash: ed2k.NewUserHash("u"), Port: 4662,
			Tags: Tags{StringTag(TagName, "x"), UintTag(TagVersion, 60)}},
		&Hello{UserHash: ed2k.NewUserHash("p"), Port: 4662},
		&OfferFiles{Files: []FileEntry{NewFileEntry(ed2k.SyntheticHash("f"), "n.avi", 1000, "Video")}},
		&FoundSources{Hash: ed2k.SyntheticHash("a"), Sources: []Endpoint{{IP: 1, Port: 2}}},
		&SendingPart{Hash: ed2k.SyntheticHash("a"), Start: 0, End: 3, Data: []byte{1, 2, 3}},
		&AskSharedFilesAnswer{},
	}
	for _, m := range seeds {
		f.Add(AppendFrame(nil, m), true)
		f.Add(AppendFrame(nil, m), false)
	}
	// Truncations and corruptions.
	base := AppendFrame(nil, seeds[1])
	f.Add(base[:len(base)/2], true)
	corrupted := append([]byte(nil), base...)
	corrupted[0] = 0x99
	f.Add(corrupted, true)
	f.Add([]byte{ProtoPacked, 5, 0, 0, 0, 0x01, 1, 2, 3, 4}, false)

	f.Fuzz(func(t *testing.T, data []byte, peerSpace bool) {
		space := ServerSpace
		if peerSpace {
			space = PeerSpace
		}
		r := NewReader(bytes.NewReader(data), space)
		for i := 0; i < 16; i++ { // bounded: hostile inputs must not loop
			m, err := r.Read()
			if err != nil {
				if m != nil {
					t.Fatalf("message and error together: %T, %v", m, err)
				}
				return
			}
			if m == nil {
				t.Fatal("nil message without error")
			}
			// Whatever decoded must re-encode without panicking.
			AppendFrame(nil, m)
		}
	})
}

// FuzzRoundTrip checks that any frame the encoder produces for a decoded
// message decodes back to an equivalent payload (idempotent re-encode).
func FuzzRoundTrip(f *testing.F) {
	f.Add(AppendFrame(nil, &Hello{UserHash: ed2k.NewUserHash("p"), Port: 1}), true)
	f.Add(AppendFrame(nil, &SearchRequest{Query: "abc"}), false)
	f.Fuzz(func(t *testing.T, data []byte, peerSpace bool) {
		space := ServerSpace
		if peerSpace {
			space = PeerSpace
		}
		m, err := NewReader(bytes.NewReader(data), space).Read()
		if err != nil {
			return // invalid input: fine
		}
		first := AppendFrame(nil, m)
		m2, err := NewReader(bytes.NewReader(first), space).Read()
		if err != nil {
			// EOF means the re-encoded frame was empty, impossible.
			if err == io.EOF {
				t.Fatal("re-encoded frame unreadable")
			}
			t.Fatalf("re-encoded frame rejected: %v", err)
		}
		second := AppendFrame(nil, m2)
		if !bytes.Equal(first, second) {
			t.Fatalf("re-encode not idempotent:\n%x\n%x", first, second)
		}
	})
}
