package wire

import (
	"fmt"
)

// Tag name identifiers (the 1-byte "special" tag names of the eDonkey
// protocol).
const (
	TagName        byte = 0x01
	TagSize        byte = 0x02
	TagType        byte = 0x03
	TagFormat      byte = 0x04
	TagDescription byte = 0x0B
	TagPort        byte = 0x0F
	TagVersion     byte = 0x11
	TagFlags       byte = 0x20
	TagAvail       byte = 0x15
	TagMuleVersion byte = 0xFB
)

// Tag value types on the wire.
const (
	tagTypeString byte = 0x02
	tagTypeUint32 byte = 0x03
)

// Tag is one metadata attribute: a (name, value) pair where the value is
// either a string or a uint32. Names are usually single protocol-defined
// bytes (TagName, TagSize, ...) but free-form string names are legal.
type Tag struct {
	// ID is the 1-byte special name; used when NameStr is empty.
	ID byte
	// NameStr is the free-form name, if any.
	NameStr string
	// Str holds the value when IsString, Uint otherwise.
	Str      string
	Uint     uint32
	IsString bool
}

// StringTag builds a string-valued tag with a 1-byte name.
func StringTag(id byte, v string) Tag { return Tag{ID: id, Str: v, IsString: true} }

// UintTag builds an integer-valued tag with a 1-byte name.
func UintTag(id byte, v uint32) Tag { return Tag{ID: id, Uint: v} }

// NamedStringTag builds a string-valued tag with a free-form name.
func NamedStringTag(name, v string) Tag { return Tag{NameStr: name, Str: v, IsString: true} }

func (t Tag) String() string {
	name := t.NameStr
	if name == "" {
		name = fmt.Sprintf("0x%02X", t.ID)
	}
	if t.IsString {
		return fmt.Sprintf("%s=%q", name, t.Str)
	}
	return fmt.Sprintf("%s=%d", name, t.Uint)
}

// Tags is a tag list with lookup helpers.
type Tags []Tag

// Lookup returns the first tag with the given 1-byte name.
func (ts Tags) Lookup(id byte) (Tag, bool) {
	for _, t := range ts {
		if t.NameStr == "" && t.ID == id {
			return t, true
		}
	}
	return Tag{}, false
}

// Str returns the string value of tag id, or "".
func (ts Tags) Str(id byte) string {
	if t, ok := ts.Lookup(id); ok && t.IsString {
		return t.Str
	}
	return ""
}

// Uint returns the integer value of tag id, or 0.
func (ts Tags) Uint(id byte) uint32 {
	if t, ok := ts.Lookup(id); ok && !t.IsString {
		return t.Uint
	}
	return 0
}

func (t Tag) encode(e *encoder) {
	if t.IsString {
		e.u8(tagTypeString)
	} else {
		e.u8(tagTypeUint32)
	}
	if t.NameStr != "" {
		e.str(t.NameStr)
	} else {
		e.u16(1)
		e.u8(t.ID)
	}
	if t.IsString {
		e.str(t.Str)
	} else {
		e.u32(t.Uint)
	}
}

func decodeTag(d *decoder) Tag {
	typ := d.u8()
	nameLen := d.u16()
	var t Tag
	switch nameLen {
	case 0:
		d.fail(fmt.Errorf("wire: tag with empty name"))
	case 1:
		t.ID = d.u8()
	default:
		t.NameStr = string(d.bytes(int(nameLen)))
	}
	switch typ {
	case tagTypeString:
		t.IsString = true
		t.Str = d.str()
	case tagTypeUint32:
		t.Uint = d.u32()
	default:
		d.fail(fmt.Errorf("wire: unsupported tag type 0x%02X", typ))
	}
	return t
}

func encodeTags(e *encoder, ts Tags) {
	e.u32(uint32(len(ts)))
	for _, t := range ts {
		t.encode(e)
	}
}

const maxTags = 1 << 16 // defensive bound against hostile counts

func decodeTags(d *decoder) Tags {
	n := d.u32()
	if n > maxTags {
		d.fail(fmt.Errorf("wire: tag count %d exceeds limit", n))
		return nil
	}
	if n == 0 || d.err != nil {
		return nil
	}
	ts := make(Tags, 0, min(int(n), 16))
	for i := uint32(0); i < n && d.err == nil; i++ {
		ts = append(ts, decodeTag(d))
	}
	return ts
}
