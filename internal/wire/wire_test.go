package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/ed2k"
)

func roundTrip(t *testing.T, space Space, m Message) Message {
	t.Helper()
	frame := AppendFrame(nil, m)
	r := NewReader(bytes.NewReader(frame), space)
	got, err := r.Read()
	if err != nil {
		t.Fatalf("round trip %T: %v", m, err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip %T:\n got %#v\nwant %#v", m, got, m)
	}
	return got
}

func sampleEntry(i int) FileEntry {
	return NewFileEntry(ed2k.SyntheticHash("f"), "file name.avi", 733421568, "Video")
}

func TestServerMessagesRoundTrip(t *testing.T) {
	msgs := []Message{
		&LoginRequest{
			UserHash: ed2k.NewUserHash("u1"),
			Port:     4662,
			Tags:     Tags{StringTag(TagName, "honeypot-00"), UintTag(TagVersion, 0x3C)},
		},
		&IDChange{ClientID: 0x11223344, Flags: 1},
		&ServerMessage{Text: "server version 17.15 (lugdunum)"},
		&ServerStatus{Users: 812345, Files: 98111222},
		&ServerIdent{
			Hash: ed2k.SyntheticHash("srv"), IP: 0x01020304, Port: 4661,
			Tags: Tags{StringTag(TagName, "Big Server"), StringTag(TagDescription, "test")},
		},
		&OfferFiles{Files: []FileEntry{sampleEntry(0), sampleEntry(1)}},
		&OfferFiles{}, // keep-alive form
		&GetSources{Hash: ed2k.SyntheticHash("g")},
		&FoundSources{
			Hash:    ed2k.SyntheticHash("g"),
			Sources: []Endpoint{{IP: 0x0A0B0C0D, Port: 4662}, {IP: 0x01000001, Port: 7777}},
		},
		&SearchRequest{Query: "linux distribution"},
		&SearchResult{Files: []FileEntry{sampleEntry(0)}},
		&GetServerList{},
		&ServerList{Servers: []Endpoint{{IP: 5, Port: 4661}}},
		&Reject{},
	}
	for _, m := range msgs {
		roundTrip(t, ServerSpace, m)
	}
}

func TestPeerMessagesRoundTrip(t *testing.T) {
	msgs := []Message{
		&Hello{
			UserHash: ed2k.NewUserHash("peer"), ClientID: 0x44332211, Port: 4662,
			Tags:     Tags{StringTag(TagName, "aMule 2.2.2"), UintTag(TagVersion, 0x3C)},
			ServerIP: 0x01020304, ServerPort: 4661,
		},
		&HelloAnswer{
			UserHash: ed2k.NewUserHash("hp"), ClientID: 77, Port: 4662,
			ServerIP: 0x01020304, ServerPort: 4661,
		},
		&RequestFileName{Hash: ed2k.SyntheticHash("x")},
		&FileReqAnswer{Hash: ed2k.SyntheticHash("x"), Name: "movie.avi"},
		&FileReqAnsNoFile{Hash: ed2k.SyntheticHash("x")},
		&SetReqFileID{Hash: ed2k.SyntheticHash("x")},
		&FileStatus{Hash: ed2k.SyntheticHash("x"), Parts: 12, Bitmap: []byte{0xFF, 0x0F}},
		&StartUploadReq{Hash: ed2k.SyntheticHash("x")},
		&AcceptUploadReq{},
		&QueueRank{Rank: 42},
		&RequestParts{
			Hash:  ed2k.SyntheticHash("x"),
			Start: [3]uint32{0, 184320, 368640},
			End:   [3]uint32{184320, 368640, 552960},
		},
		&SendingPart{Hash: ed2k.SyntheticHash("x"), Start: 0, End: 5, Data: []byte("junk!")},
		&CancelTransfer{},
		&OutOfPartRequests{},
		&EndOfDownload{Hash: ed2k.SyntheticHash("x")},
		&AskSharedFiles{},
		&AskSharedFilesAnswer{Files: []FileEntry{sampleEntry(0)}},
		&AskSharedFilesAnswer{}, // browse disabled
		&HashSetRequest{Hash: ed2k.SyntheticHash("x")},
		&HashSetAnswer{Hash: ed2k.SyntheticHash("x"), Parts: []ed2k.Hash{ed2k.SyntheticHash("p0"), ed2k.SyntheticHash("p1")}},
	}
	for _, m := range msgs {
		roundTrip(t, PeerSpace, m)
	}
}

func TestOpcodeCollisionBetweenSpaces(t *testing.T) {
	// 0x01 is LOGIN-REQUEST on server links and HELLO on peer links.
	login := &LoginRequest{UserHash: ed2k.NewUserHash("u"), Port: 4662}
	hello := &Hello{UserHash: ed2k.NewUserHash("u"), Port: 4662}
	if login.Op() != hello.Op() {
		t.Fatal("test premise broken: opcodes should collide")
	}
	frame := AppendFrame(nil, hello)
	if _, err := NewReader(bytes.NewReader(frame), PeerSpace).Read(); err != nil {
		t.Errorf("HELLO in peer space: %v", err)
	}
	// The same HELLO frame decodes as a LoginRequest in server space only if
	// field layouts happen to align; it must at least not panic and must
	// produce either an error or a LoginRequest.
	m, err := NewReader(bytes.NewReader(frame), ServerSpace).Read()
	if err == nil {
		if _, ok := m.(*LoginRequest); !ok {
			t.Errorf("server space decoded %T", m)
		}
	}
}

func TestFrameHeaderLayout(t *testing.T) {
	m := &GetSources{Hash: ed2k.SyntheticHash("h")}
	frame := AppendFrame(nil, m)
	if frame[0] != ProtoEDonkey {
		t.Errorf("protocol byte = 0x%02X", frame[0])
	}
	size := binary.LittleEndian.Uint32(frame[1:5])
	if int(size) != len(frame)-5 {
		t.Errorf("declared size %d, frame remainder %d", size, len(frame)-5)
	}
	if Opcode(frame[5]) != OpGetSources {
		t.Errorf("opcode byte = 0x%02X", frame[5])
	}
	if size != 1+16 { // opcode + hash
		t.Errorf("GET-SOURCES size = %d, want 17", size)
	}
}

func TestPackedFrameRoundTrip(t *testing.T) {
	// Large compressible message.
	files := make([]FileEntry, 200)
	for i := range files {
		files[i] = NewFileEntry(ed2k.SyntheticHash("f"), "aaaaaaaaaaaaaaaaaaaaaaaa.avi", 1000, "Video")
	}
	m := &OfferFiles{Files: files}
	frame, err := MarshalFrame(m, true)
	if err != nil {
		t.Fatal(err)
	}
	if frame[0] != ProtoPacked {
		t.Fatalf("expected packed frame, got protocol 0x%02X", frame[0])
	}
	plain := AppendFrame(nil, m)
	if len(frame) >= len(plain) {
		t.Errorf("packed frame (%d) not smaller than plain (%d)", len(frame), len(plain))
	}
	got, err := NewReader(bytes.NewReader(frame), ServerSpace).Read()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Error("packed round trip mismatch")
	}
}

func TestMarshalFrameSkipsUselessCompression(t *testing.T) {
	m := &AcceptUploadReq{}
	frame, err := MarshalFrame(m, true)
	if err != nil {
		t.Fatal(err)
	}
	if frame[0] != ProtoEDonkey {
		t.Errorf("tiny message should stay plain, got 0x%02X", frame[0])
	}
}

func TestReaderRejectsBadFrames(t *testing.T) {
	cases := []struct {
		name  string
		frame []byte
	}{
		{"bad protocol", []byte{0x99, 2, 0, 0, 0, 0x01, 0x00}},
		{"zero size", []byte{ProtoEDonkey, 0, 0, 0, 0, 0x01}},
		{"oversize", append([]byte{ProtoEDonkey}, append(binary.LittleEndian.AppendUint32(nil, MaxFrameSize+2), 0x01)...)},
		{"unknown opcode", []byte{ProtoEDonkey, 1, 0, 0, 0, 0xEE}},
		{"truncated payload header", []byte{ProtoEDonkey, 30, 0, 0, 0, byte(OpGetSources), 1, 2, 3}},
	}
	for _, c := range cases {
		r := NewReader(bytes.NewReader(c.frame), ServerSpace)
		if _, err := r.Read(); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestReaderReportsEOF(t *testing.T) {
	r := NewReader(bytes.NewReader(nil), ServerSpace)
	if _, err := r.Read(); !errors.Is(err, io.EOF) {
		t.Errorf("want io.EOF, got %v", err)
	}
}

func TestUnmarshalRejectsTrailingBytes(t *testing.T) {
	payload := make([]byte, 17) // GetSources wants 16
	_, err := Unmarshal(ServerSpace, OpGetSources, payload)
	if !errors.Is(err, ErrTrailingBytes) {
		t.Errorf("want ErrTrailingBytes, got %v", err)
	}
}

func TestUnmarshalRejectsTruncation(t *testing.T) {
	payload := make([]byte, 15)
	_, err := Unmarshal(ServerSpace, OpGetSources, payload)
	if !errors.Is(err, ErrTruncated) {
		t.Errorf("want ErrTruncated, got %v", err)
	}
}

func TestWriterReaderStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, false)
	msgs := []Message{
		&GetSources{Hash: ed2k.SyntheticHash("a")},
		&GetSources{Hash: ed2k.SyntheticHash("b")},
		&SearchRequest{Query: "x"},
	}
	for _, m := range msgs {
		if err := w.Write(m); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&buf, ServerSpace)
	for i, want := range msgs {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("msg %d mismatch", i)
		}
	}
	if _, err := r.Read(); !errors.Is(err, io.EOF) {
		t.Errorf("want EOF after stream, got %v", err)
	}
}

func TestTagsLookup(t *testing.T) {
	ts := Tags{
		StringTag(TagName, "n"),
		UintTag(TagSize, 123),
		NamedStringTag("custom", "v"),
	}
	if ts.Str(TagName) != "n" {
		t.Error("Str(TagName)")
	}
	if ts.Uint(TagSize) != 123 {
		t.Error("Uint(TagSize)")
	}
	if ts.Str(TagSize) != "" {
		t.Error("Str on uint tag should be empty")
	}
	if ts.Uint(TagName) != 0 {
		t.Error("Uint on string tag should be 0")
	}
	if _, ok := ts.Lookup(0x7F); ok {
		t.Error("Lookup of absent tag")
	}
}

func TestEndpointConversion(t *testing.T) {
	ap := netip.AddrPortFrom(netip.MustParseAddr("203.0.113.9"), 4662)
	ep, err := EndpointFromAddrPort(ap)
	if err != nil {
		t.Fatal(err)
	}
	if got := ep.AddrPort(); got != ap {
		t.Errorf("round trip: %v != %v", got, ap)
	}
	low := Endpoint{IP: 1234, Port: 1}
	if low.AddrPort().IsValid() {
		t.Error("low endpoint should not produce a valid AddrPort")
	}
}

func TestFileEntryAccessors(t *testing.T) {
	f := NewFileEntry(ed2k.SyntheticHash("m"), "movie.avi", 700_000_000, "Video")
	if f.Name() != "movie.avi" || f.Size() != 700_000_000 || f.Type() != "Video" {
		t.Errorf("accessors: %q %d %q", f.Name(), f.Size(), f.Type())
	}
}

func TestRequestPartsRanges(t *testing.T) {
	m := &RequestParts{Start: [3]uint32{0, 100, 0}, End: [3]uint32{50, 200, 0}}
	r := m.Ranges()
	if len(r) != 2 || r[0] != [2]uint32{0, 50} || r[1] != [2]uint32{100, 200} {
		t.Errorf("Ranges() = %v", r)
	}
}

func TestOpcodeNames(t *testing.T) {
	if OpStartUploadReq.Name(PeerSpace) != "START-UPLOAD" {
		t.Error("START-UPLOAD name")
	}
	if OpRequestParts.Name(PeerSpace) != "REQUEST-PART" {
		t.Error("REQUEST-PART name")
	}
	if OpHello.Name(PeerSpace) != "HELLO" {
		t.Error("HELLO name")
	}
	if Opcode(0x01).Name(ServerSpace) != "LOGIN-REQUEST" {
		t.Error("LOGIN-REQUEST name")
	}
	if Opcode(0xEF).Name(PeerSpace) != "OP-0xEF" {
		t.Error("fallback name")
	}
}

// Property: the decoder never panics on arbitrary payloads, for every
// registered opcode in both spaces.
func TestQuickDecoderRobustness(t *testing.T) {
	ops := func(table map[Opcode]decoderFunc) []Opcode {
		var out []Opcode
		for op := range table {
			out = append(out, op)
		}
		return out
	}
	serverOps := ops(serverDecoders)
	peerOps := ops(peerDecoders)
	f := func(payload []byte, pick uint8, peer bool) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("decoder panicked: %v", r)
			}
		}()
		if peer {
			op := peerOps[int(pick)%len(peerOps)]
			Unmarshal(PeerSpace, op, payload)
		} else {
			op := serverOps[int(pick)%len(serverOps)]
			Unmarshal(ServerSpace, op, payload)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: tag lists of random shape round-trip through OfferFiles.
func TestQuickTagRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(nTags uint8) bool {
		var tags Tags // nil when empty, matching the decoder's convention
		for i := 0; i < int(nTags%8); i++ {
			if rng.Intn(2) == 0 {
				tags = append(tags, UintTag(byte(rng.Intn(250)+1), rng.Uint32()))
			} else {
				tags = append(tags, StringTag(byte(rng.Intn(250)+1), "v"))
			}
		}
		m := &OfferFiles{Files: []FileEntry{{Hash: ed2k.SyntheticHash("q"), Tags: tags}}}
		frame := AppendFrame(nil, m)
		got, err := NewReader(bytes.NewReader(frame), ServerSpace).Read()
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeHello(b *testing.B) {
	m := &Hello{
		UserHash: ed2k.NewUserHash("peer"), ClientID: 0x44332211, Port: 4662,
		Tags: Tags{StringTag(TagName, "aMule 2.2.2"), UintTag(TagVersion, 0x3C)},
	}
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendFrame(buf[:0], m)
	}
}

func BenchmarkDecodeHello(b *testing.B) {
	m := &Hello{
		UserHash: ed2k.NewUserHash("peer"), ClientID: 0x44332211, Port: 4662,
		Tags: Tags{StringTag(TagName, "aMule 2.2.2"), UintTag(TagVersion, 0x3C)},
	}
	frame := AppendFrame(nil, m)
	payload := frame[6:]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(PeerSpace, OpHello, payload); err != nil {
			b.Fatal(err)
		}
	}
}
