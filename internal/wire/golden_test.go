package wire

import (
	"bytes"
	"encoding/hex"
	"testing"

	"repro/internal/ed2k"
)

// Golden frames: these byte layouts are the eDonkey wire format as
// documented in the eMule protocol specification. They must never change —
// a different layout would not interoperate with the network the paper
// measured.

func hashFromBytes(b byte) ed2k.Hash {
	var h ed2k.Hash
	for i := range h {
		h[i] = b
	}
	return h
}

func TestGoldenGetSources(t *testing.T) {
	m := &GetSources{Hash: hashFromBytes(0xAB)}
	got := AppendFrame(nil, m)
	want := "e3" + // protocol
		"11000000" + // size = 17 (opcode + 16-byte hash), little-endian
		"19" + // OP_GETSOURCES
		"abababababababababababababababab"
	if hex.EncodeToString(got) != want {
		t.Errorf("GET-SOURCES frame:\n got %x\nwant %s", got, want)
	}
}

func TestGoldenStartUpload(t *testing.T) {
	m := &StartUploadReq{Hash: hashFromBytes(0x01)}
	got := AppendFrame(nil, m)
	want := "e3" + "11000000" + "54" + "01010101010101010101010101010101"
	if hex.EncodeToString(got) != want {
		t.Errorf("START-UPLOAD frame:\n got %x\nwant %s", got, want)
	}
}

func TestGoldenRequestParts(t *testing.T) {
	m := &RequestParts{Hash: hashFromBytes(0x02)}
	m.Start[0], m.End[0] = 0x100, 0x200
	got := AppendFrame(nil, m)
	want := "e3" + "29000000" + "47" + // size = 1 + 16 + 24 = 41 = 0x29
		"02020202020202020202020202020202" +
		"000100000000000000000000" + // start[3] LE
		"000200000000000000000000" // end[3] LE
	if hex.EncodeToString(got) != want {
		t.Errorf("REQUEST-PART frame:\n got %x\nwant %s", got, want)
	}
}

func TestGoldenHelloLayout(t *testing.T) {
	m := &Hello{
		UserHash: hashFromBytes(0x0F),
		ClientID: 0x04030201,
		Port:     0x1236, // 4662
		Tags:     Tags{UintTag(TagVersion, 0x3C)},
		ServerIP: 0x08080808, ServerPort: 0x1235,
	}
	got := AppendFrame(nil, m)
	// size = opcode(1) + marker(1) + hash(16) + id(4) + port(2) +
	// tagcount(4) + tag(8) + serverIP(4) + serverPort(2) = 42
	want := "e3" +
		"2a000000" +
		"01" + // OP_HELLO
		"10" + // hash length marker = 16
		"0f0f0f0f0f0f0f0f0f0f0f0f0f0f0f0f" +
		"01020304" + // clientID LE
		"3612" + // port LE
		"01000000" + // 1 tag
		"03" + "0100" + "11" + // uint tag, name len 1, TagVersion
		"3c000000" + // value 0x3C
		"08080808" + // server IP
		"3512" // server port
	if hex.EncodeToString(got) != want {
		t.Errorf("HELLO frame:\n got %x\nwant %s", got, want)
	}
}

func TestGoldenStringTag(t *testing.T) {
	m := &ServerMessage{Text: "hi"}
	got := AppendFrame(nil, m)
	want := "e3" + "05000000" + "38" + "0200" + "6869"
	if hex.EncodeToString(got) != want {
		t.Errorf("SERVER-MESSAGE frame:\n got %x\nwant %s", got, want)
	}
}

func TestGoldenEmptyMessages(t *testing.T) {
	cases := []struct {
		m    Message
		want string
	}{
		{&AcceptUploadReq{}, "e3" + "01000000" + "55"},
		{&CancelTransfer{}, "e3" + "01000000" + "56"},
		{&AskSharedFiles{}, "e3" + "01000000" + "4a"},
		{&GetServerList{}, "e3" + "01000000" + "14"},
	}
	for _, c := range cases {
		got := AppendFrame(nil, c.m)
		if hex.EncodeToString(got) != c.want {
			t.Errorf("%T frame:\n got %x\nwant %s", c.m, got, c.want)
		}
	}
}

func TestGoldenSendingPartCarriesRawData(t *testing.T) {
	data := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	m := &SendingPart{Hash: hashFromBytes(0x03), Start: 0, End: 4, Data: data}
	got := AppendFrame(nil, m)
	// Payload tail must be the raw data bytes.
	if !bytes.HasSuffix(got, data) {
		t.Errorf("SENDING-PART does not end with raw data: %x", got)
	}
	// size = 1 + 16 + 4 + 4 + 4 = 29
	if got[1] != 29 || got[2] != 0 {
		t.Errorf("SENDING-PART size field: %x", got[1:5])
	}
}
