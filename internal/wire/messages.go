package wire

import (
	"fmt"
	"net/netip"

	"repro/internal/ed2k"
)

// Endpoint is an (IPv4, port) pair as carried in source lists.
type Endpoint struct {
	IP   uint32 // little-endian encoded IPv4, matching clientID convention
	Port uint16
}

// EndpointFromAddrPort converts a netip.AddrPort.
func EndpointFromAddrPort(ap netip.AddrPort) (Endpoint, error) {
	id, err := ed2k.HighIDFor(ap.Addr())
	if err != nil {
		return Endpoint{}, err
	}
	return Endpoint{IP: uint32(id), Port: ap.Port()}, nil
}

// AddrPort converts back to a netip.AddrPort. Low "IPs" (callback-style
// entries) yield an invalid AddrPort.
func (ep Endpoint) AddrPort() netip.AddrPort {
	id := ed2k.ClientID(ep.IP)
	if id.Low() {
		return netip.AddrPort{}
	}
	a, err := id.Addr()
	if err != nil {
		return netip.AddrPort{}
	}
	return netip.AddrPortFrom(a, ep.Port)
}

// FileEntry describes one shared file inside OFFER-FILES, SEARCH-RESULT
// and ASK-SHARED-FILES-ANSWER messages.
type FileEntry struct {
	Hash ed2k.Hash
	// ClientID and Port identify the provider slot; servers echo these in
	// search results. Offer messages conventionally carry 0/0 (the server
	// substitutes the session's ID).
	ClientID uint32
	Port     uint16
	Tags     Tags
}

// Name returns the filename tag.
func (f FileEntry) Name() string { return f.Tags.Str(TagName) }

// Size returns the file size tag.
func (f FileEntry) Size() int64 { return int64(f.Tags.Uint(TagSize)) }

// Type returns the media type tag.
func (f FileEntry) Type() string { return f.Tags.Str(TagType) }

// NewFileEntry builds an entry with the standard name/size/type tags.
func NewFileEntry(h ed2k.Hash, name string, size int64, typ string) FileEntry {
	tags := Tags{
		StringTag(TagName, name),
		UintTag(TagSize, uint32(size)),
	}
	if typ != "" {
		tags = append(tags, StringTag(TagType, typ))
	}
	return FileEntry{Hash: h, Tags: tags}
}

func (f FileEntry) encode(e *encoder) {
	e.hash(f.Hash)
	e.u32(f.ClientID)
	e.u16(f.Port)
	encodeTags(e, f.Tags)
}

func decodeFileEntry(d *decoder) FileEntry {
	var f FileEntry
	f.Hash = d.hash()
	f.ClientID = d.u32()
	f.Port = d.u16()
	f.Tags = decodeTags(d)
	return f
}

const maxListLen = 1 << 20 // defensive bound for any count-prefixed list

func decodeCount(d *decoder) int {
	n := d.u32()
	if n > maxListLen {
		d.fail(fmt.Errorf("wire: list length %d exceeds limit", n))
		return 0
	}
	return int(n)
}

// ---------------------------------------------------------------------------
// Client <-> server messages.

// LoginRequest is the first message a client sends to a server.
type LoginRequest struct {
	UserHash ed2k.Hash
	ClientID uint32 // 0 on first contact
	Port     uint16
	Tags     Tags // name, version, port, flags
}

func (*LoginRequest) Op() Opcode { return OpLoginRequest }

func (m *LoginRequest) encode(e *encoder) {
	e.hash(m.UserHash)
	e.u32(m.ClientID)
	e.u16(m.Port)
	encodeTags(e, m.Tags)
}

// IDChange tells the client which clientID the server assigned.
type IDChange struct {
	ClientID uint32
	Flags    uint32
}

func (*IDChange) Op() Opcode { return OpIDChange }

func (m *IDChange) encode(e *encoder) {
	e.u32(m.ClientID)
	e.u32(m.Flags)
}

// ServerMessage is free text shown to the user (MOTD, warnings).
type ServerMessage struct {
	Text string
}

func (*ServerMessage) Op() Opcode { return OpServerMessage }

func (m *ServerMessage) encode(e *encoder) { e.str(m.Text) }

// ServerStatus reports the server's user and file counts.
type ServerStatus struct {
	Users uint32
	Files uint32
}

func (*ServerStatus) Op() Opcode { return OpServerStatus }

func (m *ServerStatus) encode(e *encoder) {
	e.u32(m.Users)
	e.u32(m.Files)
}

// ServerIdent carries the server's identity and descriptive tags.
type ServerIdent struct {
	Hash ed2k.Hash
	IP   uint32
	Port uint16
	Tags Tags
}

func (*ServerIdent) Op() Opcode { return OpServerIdent }

func (m *ServerIdent) encode(e *encoder) {
	e.hash(m.Hash)
	e.u32(m.IP)
	e.u16(m.Port)
	encodeTags(e, m.Tags)
}

// OfferFiles publishes (or refreshes) the client's shared file list. An
// empty Files list is legal and serves as a keep-alive.
type OfferFiles struct {
	Files []FileEntry
}

func (*OfferFiles) Op() Opcode { return OpOfferFiles }

func (m *OfferFiles) encode(e *encoder) {
	e.u32(uint32(len(m.Files)))
	for _, f := range m.Files {
		f.encode(e)
	}
}

// GetSources asks the server for providers of a file.
type GetSources struct {
	Hash ed2k.Hash
}

func (*GetSources) Op() Opcode { return OpGetSources }

func (m *GetSources) encode(e *encoder) { e.hash(m.Hash) }

// FoundSources answers GetSources with provider endpoints.
type FoundSources struct {
	Hash    ed2k.Hash
	Sources []Endpoint
}

func (*FoundSources) Op() Opcode { return OpFoundSources }

func (m *FoundSources) encode(e *encoder) {
	e.hash(m.Hash)
	e.u8(byte(len(m.Sources)))
	for _, s := range m.Sources {
		e.u32(s.IP)
		e.u16(s.Port)
	}
}

// SearchRequest is a keyword search. Only the single-keyword form of the
// search grammar is implemented; it is the only form the measurement
// platform and the simulated peers emit.
type SearchRequest struct {
	Query string
}

func (*SearchRequest) Op() Opcode { return OpSearchRequest }

func (m *SearchRequest) encode(e *encoder) {
	e.u8(0x01) // string term
	e.str(m.Query)
}

// SearchResult returns matching files.
type SearchResult struct {
	Files []FileEntry
}

func (*SearchResult) Op() Opcode { return OpSearchResult }

func (m *SearchResult) encode(e *encoder) {
	e.u32(uint32(len(m.Files)))
	for _, f := range m.Files {
		f.encode(e)
	}
}

// GetServerList asks for other known servers.
type GetServerList struct{}

func (*GetServerList) Op() Opcode { return OpGetServerList }

func (m *GetServerList) encode(*encoder) {}

// ServerList returns other known servers.
type ServerList struct {
	Servers []Endpoint
}

func (*ServerList) Op() Opcode { return OpServerList }

func (m *ServerList) encode(e *encoder) {
	e.u8(byte(len(m.Servers)))
	for _, s := range m.Servers {
		e.u32(s.IP)
		e.u16(s.Port)
	}
}

// Reject reports a protocol violation to the sender.
type Reject struct{}

func (*Reject) Op() Opcode { return OpReject }

func (m *Reject) encode(*encoder) {}

// ---------------------------------------------------------------------------
// Client <-> client messages.

// Hello opens a peer conversation.
type Hello struct {
	UserHash   ed2k.Hash
	ClientID   uint32
	Port       uint16
	Tags       Tags // client name, version
	ServerIP   uint32
	ServerPort uint16
}

func (*Hello) Op() Opcode { return OpHello }

func (m *Hello) encode(e *encoder) {
	e.u8(16) // hash length marker, constant in the protocol
	m.encodeCommon(e)
}

func (m *Hello) encodeCommon(e *encoder) {
	e.hash(m.UserHash)
	e.u32(m.ClientID)
	e.u16(m.Port)
	encodeTags(e, m.Tags)
	e.u32(m.ServerIP)
	e.u16(m.ServerPort)
}

// HelloAnswer is the response to Hello; identical body minus the hash
// length marker.
type HelloAnswer struct {
	UserHash   ed2k.Hash
	ClientID   uint32
	Port       uint16
	Tags       Tags
	ServerIP   uint32
	ServerPort uint16
}

func (*HelloAnswer) Op() Opcode { return OpHelloAnswer }

func (m *HelloAnswer) encode(e *encoder) {
	(&Hello{m.UserHash, m.ClientID, m.Port, m.Tags, m.ServerIP, m.ServerPort}).encodeCommon(e)
}

// RequestFileName asks the provider for the name of a file.
type RequestFileName struct {
	Hash ed2k.Hash
}

func (*RequestFileName) Op() Opcode { return OpRequestFileName }

func (m *RequestFileName) encode(e *encoder) { e.hash(m.Hash) }

// FileReqAnswer returns the provider's name for the file.
type FileReqAnswer struct {
	Hash ed2k.Hash
	Name string
}

func (*FileReqAnswer) Op() Opcode { return OpFileReqAnswer }

func (m *FileReqAnswer) encode(e *encoder) {
	e.hash(m.Hash)
	e.str(m.Name)
}

// FileReqAnsNoFile tells the requester the provider does not share the file.
type FileReqAnsNoFile struct {
	Hash ed2k.Hash
}

func (*FileReqAnsNoFile) Op() Opcode { return OpFileReqAnsNoFile }

func (m *FileReqAnsNoFile) encode(e *encoder) { e.hash(m.Hash) }

// SetReqFileID declares which file subsequent transfer messages concern.
type SetReqFileID struct {
	Hash ed2k.Hash
}

func (*SetReqFileID) Op() Opcode { return OpSetReqFileID }

func (m *SetReqFileID) encode(e *encoder) { e.hash(m.Hash) }

// FileStatus reports which parts of the file the sender has.
type FileStatus struct {
	Hash   ed2k.Hash
	Bitmap []byte // ceil(parts/8) bytes, LSB-first
	Parts  uint16
}

func (*FileStatus) Op() Opcode { return OpFileStatus }

func (m *FileStatus) encode(e *encoder) {
	e.hash(m.Hash)
	e.u16(m.Parts)
	e.raw(m.Bitmap)
}

// StartUploadReq asks the provider for an upload slot for a file. This is
// the paper's START-UPLOAD message.
type StartUploadReq struct {
	Hash ed2k.Hash
}

func (*StartUploadReq) Op() Opcode { return OpStartUploadReq }

func (m *StartUploadReq) encode(e *encoder) { e.hash(m.Hash) }

// AcceptUploadReq grants the upload slot.
type AcceptUploadReq struct{}

func (*AcceptUploadReq) Op() Opcode { return OpAcceptUploadReq }

func (m *AcceptUploadReq) encode(*encoder) {}

// QueueRank reports the requester's position in the upload queue.
type QueueRank struct {
	Rank uint32
}

func (*QueueRank) Op() Opcode { return OpQueueRank }

func (m *QueueRank) encode(e *encoder) { e.u32(m.Rank) }

// RequestParts asks for up to three byte ranges of the file. This is the
// paper's REQUEST-PART message. Ranges are [Start[i], End[i]) and unused
// slots are zero.
type RequestParts struct {
	Hash  ed2k.Hash
	Start [3]uint32
	End   [3]uint32
}

func (*RequestParts) Op() Opcode { return OpRequestParts }

func (m *RequestParts) encode(e *encoder) {
	e.hash(m.Hash)
	for _, s := range m.Start {
		e.u32(s)
	}
	for _, x := range m.End {
		e.u32(x)
	}
}

// Ranges returns the non-empty ranges.
func (m *RequestParts) Ranges() [][2]uint32 {
	var out [][2]uint32
	for i := 0; i < 3; i++ {
		if m.End[i] > m.Start[i] {
			out = append(out, [2]uint32{m.Start[i], m.End[i]})
		}
	}
	return out
}

// SendingPart carries one block of file content.
type SendingPart struct {
	Hash  ed2k.Hash
	Start uint32
	End   uint32
	Data  []byte
}

func (*SendingPart) Op() Opcode { return OpSendingPart }

func (m *SendingPart) encode(e *encoder) {
	e.hash(m.Hash)
	e.u32(m.Start)
	e.u32(m.End)
	e.raw(m.Data)
}

// CancelTransfer aborts the current transfer.
type CancelTransfer struct{}

func (*CancelTransfer) Op() Opcode { return OpCancelTransfer }

func (m *CancelTransfer) encode(*encoder) {}

// OutOfPartRequests tells the requester the provider's queue is full.
type OutOfPartRequests struct{}

func (*OutOfPartRequests) Op() Opcode { return OpOutOfPartRequests }

func (m *OutOfPartRequests) encode(*encoder) {}

// EndOfDownload signals the requester finished downloading the file.
type EndOfDownload struct {
	Hash ed2k.Hash
}

func (*EndOfDownload) Op() Opcode { return OpEndOfDownload }

func (m *EndOfDownload) encode(e *encoder) { e.hash(m.Hash) }

// AskSharedFiles requests the remote peer's shared file list ("browse").
type AskSharedFiles struct{}

func (*AskSharedFiles) Op() Opcode { return OpAskSharedFiles }

func (m *AskSharedFiles) encode(*encoder) {}

// AskSharedFilesAnswer returns the shared list, or an empty list when the
// user disabled browsing.
type AskSharedFilesAnswer struct {
	Files []FileEntry
}

func (*AskSharedFilesAnswer) Op() Opcode { return OpAskSharedFilesAns }

func (m *AskSharedFilesAnswer) encode(e *encoder) {
	e.u32(uint32(len(m.Files)))
	for _, f := range m.Files {
		f.encode(e)
	}
}

// HashSetRequest asks for the part-hash set of a file.
type HashSetRequest struct {
	Hash ed2k.Hash
}

func (*HashSetRequest) Op() Opcode { return OpHashSetRequest }

func (m *HashSetRequest) encode(e *encoder) { e.hash(m.Hash) }

// HashSetAnswer returns the part hashes.
type HashSetAnswer struct {
	Hash  ed2k.Hash
	Parts []ed2k.Hash
}

func (*HashSetAnswer) Op() Opcode { return OpHashSetAnswer }

func (m *HashSetAnswer) encode(e *encoder) {
	e.hash(m.Hash)
	e.u16(uint16(len(m.Parts)))
	for _, p := range m.Parts {
		e.hash(p)
	}
}

// ---------------------------------------------------------------------------
// Decoder registry.

func init() {
	registerServer(OpLoginRequest, func(d *decoder) Message {
		m := &LoginRequest{}
		m.UserHash = d.hash()
		m.ClientID = d.u32()
		m.Port = d.u16()
		m.Tags = decodeTags(d)
		return m
	})
	registerServer(OpIDChange, func(d *decoder) Message {
		return &IDChange{ClientID: d.u32(), Flags: d.u32()}
	})
	registerServer(OpServerMessage, func(d *decoder) Message {
		return &ServerMessage{Text: d.str()}
	})
	registerServer(OpServerStatus, func(d *decoder) Message {
		return &ServerStatus{Users: d.u32(), Files: d.u32()}
	})
	registerServer(OpServerIdent, func(d *decoder) Message {
		m := &ServerIdent{}
		m.Hash = d.hash()
		m.IP = d.u32()
		m.Port = d.u16()
		m.Tags = decodeTags(d)
		return m
	})
	registerServer(OpOfferFiles, func(d *decoder) Message {
		n := decodeCount(d)
		m := &OfferFiles{}
		for i := 0; i < n && d.err == nil; i++ {
			m.Files = append(m.Files, decodeFileEntry(d))
		}
		return m
	})
	registerServer(OpGetSources, func(d *decoder) Message {
		return &GetSources{Hash: d.hash()}
	})
	registerServer(OpFoundSources, func(d *decoder) Message {
		m := &FoundSources{Hash: d.hash()}
		n := int(d.u8())
		for i := 0; i < n && d.err == nil; i++ {
			m.Sources = append(m.Sources, Endpoint{IP: d.u32(), Port: d.u16()})
		}
		return m
	})
	registerServer(OpSearchRequest, func(d *decoder) Message {
		if t := d.u8(); t != 0x01 {
			d.fail(fmt.Errorf("wire: unsupported search term type 0x%02X", t))
		}
		return &SearchRequest{Query: d.str()}
	})
	registerServer(OpSearchResult, func(d *decoder) Message {
		n := decodeCount(d)
		m := &SearchResult{}
		for i := 0; i < n && d.err == nil; i++ {
			m.Files = append(m.Files, decodeFileEntry(d))
		}
		return m
	})
	registerServer(OpGetServerList, func(d *decoder) Message { return &GetServerList{} })
	registerServer(OpServerList, func(d *decoder) Message {
		m := &ServerList{}
		n := int(d.u8())
		for i := 0; i < n && d.err == nil; i++ {
			m.Servers = append(m.Servers, Endpoint{IP: d.u32(), Port: d.u16()})
		}
		return m
	})
	registerServer(OpReject, func(d *decoder) Message { return &Reject{} })

	registerPeer(OpHello, func(d *decoder) Message {
		if hl := d.u8(); hl != 16 {
			d.fail(fmt.Errorf("wire: HELLO hash length %d, want 16", hl))
		}
		m := &Hello{}
		m.UserHash = d.hash()
		m.ClientID = d.u32()
		m.Port = d.u16()
		m.Tags = decodeTags(d)
		m.ServerIP = d.u32()
		m.ServerPort = d.u16()
		return m
	})
	registerPeer(OpHelloAnswer, func(d *decoder) Message {
		m := &HelloAnswer{}
		m.UserHash = d.hash()
		m.ClientID = d.u32()
		m.Port = d.u16()
		m.Tags = decodeTags(d)
		m.ServerIP = d.u32()
		m.ServerPort = d.u16()
		return m
	})
	registerPeer(OpRequestFileName, func(d *decoder) Message {
		return &RequestFileName{Hash: d.hash()}
	})
	registerPeer(OpFileReqAnswer, func(d *decoder) Message {
		return &FileReqAnswer{Hash: d.hash(), Name: d.str()}
	})
	registerPeer(OpFileReqAnsNoFile, func(d *decoder) Message {
		return &FileReqAnsNoFile{Hash: d.hash()}
	})
	registerPeer(OpSetReqFileID, func(d *decoder) Message {
		return &SetReqFileID{Hash: d.hash()}
	})
	registerPeer(OpFileStatus, func(d *decoder) Message {
		m := &FileStatus{}
		m.Hash = d.hash()
		m.Parts = d.u16()
		m.Bitmap = d.bytes(d.remaining())
		return m
	})
	registerPeer(OpStartUploadReq, func(d *decoder) Message {
		return &StartUploadReq{Hash: d.hash()}
	})
	registerPeer(OpAcceptUploadReq, func(d *decoder) Message { return &AcceptUploadReq{} })
	registerPeer(OpQueueRank, func(d *decoder) Message { return &QueueRank{Rank: d.u32()} })
	registerPeer(OpRequestParts, func(d *decoder) Message {
		m := &RequestParts{Hash: d.hash()}
		for i := 0; i < 3; i++ {
			m.Start[i] = d.u32()
		}
		for i := 0; i < 3; i++ {
			m.End[i] = d.u32()
		}
		return m
	})
	registerPeer(OpSendingPart, func(d *decoder) Message {
		m := &SendingPart{}
		m.Hash = d.hash()
		m.Start = d.u32()
		m.End = d.u32()
		m.Data = d.bytes(d.remaining())
		return m
	})
	registerPeer(OpCancelTransfer, func(d *decoder) Message { return &CancelTransfer{} })
	registerPeer(OpOutOfPartRequests, func(d *decoder) Message { return &OutOfPartRequests{} })
	registerPeer(OpEndOfDownload, func(d *decoder) Message {
		return &EndOfDownload{Hash: d.hash()}
	})
	registerPeer(OpAskSharedFiles, func(d *decoder) Message { return &AskSharedFiles{} })
	registerPeer(OpAskSharedFilesAns, func(d *decoder) Message {
		n := decodeCount(d)
		m := &AskSharedFilesAnswer{}
		for i := 0; i < n && d.err == nil; i++ {
			m.Files = append(m.Files, decodeFileEntry(d))
		}
		return m
	})
	registerPeer(OpHashSetRequest, func(d *decoder) Message {
		return &HashSetRequest{Hash: d.hash()}
	})
	registerPeer(OpHashSetAnswer, func(d *decoder) Message {
		m := &HashSetAnswer{Hash: d.hash()}
		n := int(d.u16())
		for i := 0; i < n && d.err == nil; i++ {
			m.Parts = append(m.Parts, d.hash())
		}
		return m
	})
}
