package wire

import (
	"bytes"
	"compress/zlib"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/ed2k"
)

// MaxFrameSize bounds the declared size of an incoming frame. The largest
// legitimate eDonkey message is a SENDING-PART block (~180 KiB) or a large
// OFFER-FILES batch; 16 MiB leaves ample room while rejecting nonsense.
const MaxFrameSize = 16 << 20

// ErrFrameTooLarge is returned when a frame header declares more than
// MaxFrameSize bytes.
var ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")

// ErrBadProtocol is returned for an unknown protocol byte.
var ErrBadProtocol = errors.New("wire: unknown protocol byte")

// ErrTruncated is returned when a payload ends before its message does.
var ErrTruncated = errors.New("wire: truncated payload")

// ErrTrailingBytes is returned when a payload has bytes past its message.
var ErrTrailingBytes = errors.New("wire: trailing bytes in payload")

// ErrUnknownOpcode is returned when decoding meets an unregistered opcode.
var ErrUnknownOpcode = errors.New("wire: unknown opcode")

// encoder appends little-endian primitives to a buffer.
type encoder struct {
	buf []byte
}

func (e *encoder) u8(v byte)        { e.buf = append(e.buf, v) }
func (e *encoder) u16(v uint16)     { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }
func (e *encoder) u32(v uint32)     { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) hash(h ed2k.Hash) { e.buf = append(e.buf, h[:]...) }
func (e *encoder) raw(b []byte)     { e.buf = append(e.buf, b...) }

func (e *encoder) str(s string) {
	if len(s) > 0xFFFF {
		s = s[:0xFFFF]
	}
	e.u16(uint16(len(s)))
	e.buf = append(e.buf, s...)
}

// decoder consumes little-endian primitives from a payload, accumulating
// the first error instead of returning one per call.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *decoder) remaining() int { return len(d.buf) - d.off }

func (d *decoder) need(n int) bool {
	if d.err != nil {
		return false
	}
	if d.remaining() < n {
		d.fail(fmt.Errorf("%w: need %d bytes, have %d", ErrTruncated, n, d.remaining()))
		return false
	}
	return true
}

func (d *decoder) u8() byte {
	if !d.need(1) {
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *decoder) u16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v
}

func (d *decoder) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *decoder) hash() ed2k.Hash {
	var h ed2k.Hash
	if !d.need(len(h)) {
		return h
	}
	copy(h[:], d.buf[d.off:])
	d.off += len(h)
	return h
}

func (d *decoder) bytes(n int) []byte {
	if n < 0 || !d.need(n) {
		return nil
	}
	b := make([]byte, n)
	copy(b, d.buf[d.off:])
	d.off += n
	return b
}

func (d *decoder) str() string {
	n := int(d.u16())
	if !d.need(n) {
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

func (d *decoder) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.remaining() != 0 {
		return fmt.Errorf("%w: %d bytes", ErrTrailingBytes, d.remaining())
	}
	return nil
}

// Message is one eDonkey protocol message.
type Message interface {
	// Op returns the message's opcode within its space.
	Op() Opcode
	// encode appends the payload (not the opcode) to the encoder.
	encode(e *encoder)
}

// AppendFrame appends the complete plain (uncompressed) frame for m.
func AppendFrame(dst []byte, m Message) []byte {
	e := encoder{buf: dst}
	e.u8(ProtoEDonkey)
	sizeAt := len(e.buf)
	e.u32(0) // patched below
	e.u8(byte(m.Op()))
	before := len(e.buf)
	m.encode(&e)
	size := uint32(len(e.buf) - before + 1) // opcode + payload
	binary.LittleEndian.PutUint32(e.buf[sizeAt:], size)
	return e.buf
}

// MarshalFrame returns the complete frame for m, compressing the payload
// into a 0xD4 packed frame when compress is set and compression shrinks
// the message.
func MarshalFrame(m Message, compress bool) ([]byte, error) {
	plain := AppendFrame(nil, m)
	if !compress {
		return plain, nil
	}
	payload := plain[6:] // after proto, size, opcode
	var z bytes.Buffer
	zw := zlib.NewWriter(&z)
	if _, err := zw.Write(payload); err != nil {
		return nil, fmt.Errorf("wire: compress: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("wire: compress: %w", err)
	}
	if z.Len() >= len(payload) {
		return plain, nil // compression did not help
	}
	out := make([]byte, 0, 6+z.Len())
	out = append(out, ProtoPacked)
	out = binary.LittleEndian.AppendUint32(out, uint32(1+z.Len()))
	out = append(out, byte(m.Op()))
	out = append(out, z.Bytes()...)
	return out, nil
}

// decoderFunc builds a message from a payload decoder.
type decoderFunc func(d *decoder) Message

var serverDecoders = map[Opcode]decoderFunc{}
var peerDecoders = map[Opcode]decoderFunc{}

func registerServer(op Opcode, f decoderFunc) { serverDecoders[op] = f }
func registerPeer(op Opcode, f decoderFunc)   { peerDecoders[op] = f }

// Unmarshal decodes the payload of a frame with the given opcode.
func Unmarshal(space Space, op Opcode, payload []byte) (Message, error) {
	table := serverDecoders
	if space == PeerSpace {
		table = peerDecoders
	}
	f, ok := table[op]
	if !ok {
		return nil, fmt.Errorf("%w: 0x%02X in %v space", ErrUnknownOpcode, byte(op), space)
	}
	d := decoder{buf: payload}
	m := f(&d)
	if err := d.finish(); err != nil {
		return nil, fmt.Errorf("wire: decoding %s: %w", op.Name(space), err)
	}
	return m, nil
}

// Reader decodes frames from a byte stream.
type Reader struct {
	r     io.Reader
	space Space
	hdr   [6]byte
}

// NewReader returns a Reader decoding messages in the given space.
func NewReader(r io.Reader, space Space) *Reader {
	return &Reader{r: r, space: space}
}

// Read reads and decodes one message.
func (r *Reader) Read() (Message, error) {
	if _, err := io.ReadFull(r.r, r.hdr[:]); err != nil {
		return nil, err
	}
	proto := r.hdr[0]
	size := binary.LittleEndian.Uint32(r.hdr[1:5])
	if size == 0 {
		return nil, fmt.Errorf("wire: zero-size frame")
	}
	if size > MaxFrameSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, size)
	}
	op := Opcode(r.hdr[5])
	payload := make([]byte, size-1)
	if _, err := io.ReadFull(r.r, payload); err != nil {
		return nil, fmt.Errorf("wire: reading payload of %s: %w", op.Name(r.space), err)
	}
	switch proto {
	case ProtoEDonkey:
	case ProtoPacked:
		zr, err := zlib.NewReader(bytes.NewReader(payload))
		if err != nil {
			return nil, fmt.Errorf("wire: packed frame: %w", err)
		}
		inflated, err := io.ReadAll(io.LimitReader(zr, MaxFrameSize+1))
		if err != nil {
			return nil, fmt.Errorf("wire: inflating frame: %w", err)
		}
		if len(inflated) > MaxFrameSize {
			return nil, ErrFrameTooLarge
		}
		payload = inflated
	default:
		return nil, fmt.Errorf("%w: 0x%02X", ErrBadProtocol, proto)
	}
	return Unmarshal(r.space, op, payload)
}

// Writer encodes frames onto a byte stream.
type Writer struct {
	w        io.Writer
	compress bool
	scratch  []byte
}

// NewWriter returns a Writer. When compress is set, messages whose packed
// form is smaller are sent as 0xD4 frames.
func NewWriter(w io.Writer, compress bool) *Writer {
	return &Writer{w: w, compress: compress}
}

// Write encodes and writes one message.
func (w *Writer) Write(m Message) error {
	if w.compress {
		frame, err := MarshalFrame(m, true)
		if err != nil {
			return err
		}
		_, err = w.w.Write(frame)
		return err
	}
	w.scratch = AppendFrame(w.scratch[:0], m)
	_, err := w.w.Write(w.scratch)
	return err
}
