// Package wire implements the eDonkey TCP wire protocol: frame headers,
// the tag system, and the message vocabulary exchanged between clients and
// directory servers and between pairs of clients.
//
// Layout and opcode values follow the eMule protocol specification
// (Kulbak & Bickson, 2005), reference [6] of the reproduced paper. Every
// frame is:
//
//	+----------+------------------+--------+---------+
//	| protocol | size (uint32 LE) | opcode | payload |
//	+----------+------------------+--------+---------+
//
// where size counts opcode+payload, protocol is 0xE3 for plain eDonkey
// frames and 0xD4 for zlib-compressed payloads.
package wire

import "fmt"

// Protocol identifiers (first byte of every frame).
const (
	ProtoEDonkey = 0xE3 // plain eDonkey frame
	ProtoPacked  = 0xD4 // zlib-deflated payload
)

// Opcode identifies a message within a protocol space. eDonkey reuses
// opcode values between the client-server and client-client conversations
// (e.g. 0x01 is LOGIN-REQUEST on a server link and HELLO on a peer link),
// so decoding requires a Space.
type Opcode byte

// Client <-> server opcodes.
const (
	OpLoginRequest  Opcode = 0x01
	OpReject        Opcode = 0x05
	OpGetServerList Opcode = 0x14
	OpOfferFiles    Opcode = 0x15
	OpSearchRequest Opcode = 0x16
	OpDisconnect    Opcode = 0x18
	OpGetSources    Opcode = 0x19
	OpSearchResult  Opcode = 0x33
	OpServerList    Opcode = 0x32
	OpServerStatus  Opcode = 0x34
	OpCallbackReq   Opcode = 0x1C
	OpServerMessage Opcode = 0x38
	OpIDChange      Opcode = 0x40
	OpServerIdent   Opcode = 0x41
	OpFoundSources  Opcode = 0x42
)

// Client <-> client opcodes.
const (
	OpHello             Opcode = 0x01
	OpSendingPart       Opcode = 0x46
	OpRequestParts      Opcode = 0x47
	OpFileReqAnsNoFile  Opcode = 0x48
	OpEndOfDownload     Opcode = 0x49
	OpAskSharedFiles    Opcode = 0x4A
	OpAskSharedFilesAns Opcode = 0x4B
	OpHelloAnswer       Opcode = 0x4C
	OpSetReqFileID      Opcode = 0x4F
	OpFileStatus        Opcode = 0x50
	OpRequestFileName   Opcode = 0x58
	OpFileReqAnswer     Opcode = 0x59
	OpStartUploadReq    Opcode = 0x54
	OpAcceptUploadReq   Opcode = 0x55
	OpCancelTransfer    Opcode = 0x56
	OpOutOfPartRequests Opcode = 0x57
	OpQueueRank         Opcode = 0x5C
	OpChatMessage       Opcode = 0x4E
	OpChangeClientID    Opcode = 0x4D
	OpHashSetRequest    Opcode = 0x51
	OpHashSetAnswer     Opcode = 0x52
)

// Space selects which of the two opcode namespaces a link uses.
type Space int

const (
	// ServerSpace is the client<->server conversation.
	ServerSpace Space = iota
	// PeerSpace is the client<->client conversation.
	PeerSpace
)

func (s Space) String() string {
	switch s {
	case ServerSpace:
		return "server"
	case PeerSpace:
		return "peer"
	default:
		return fmt.Sprintf("space(%d)", int(s))
	}
}

// Name returns a symbolic opcode name for logging, using the paper's
// terminology (HELLO, START-UPLOAD, REQUEST-PART, ...) where applicable.
func (o Opcode) Name(s Space) string {
	if s == ServerSpace {
		switch o {
		case OpLoginRequest:
			return "LOGIN-REQUEST"
		case OpReject:
			return "REJECT"
		case OpGetServerList:
			return "GET-SERVER-LIST"
		case OpOfferFiles:
			return "OFFER-FILES"
		case OpSearchRequest:
			return "SEARCH-REQUEST"
		case OpDisconnect:
			return "DISCONNECT"
		case OpGetSources:
			return "GET-SOURCES"
		case OpSearchResult:
			return "SEARCH-RESULT"
		case OpServerList:
			return "SERVER-LIST"
		case OpServerStatus:
			return "SERVER-STATUS"
		case OpCallbackReq:
			return "CALLBACK-REQUEST"
		case OpServerMessage:
			return "SERVER-MESSAGE"
		case OpIDChange:
			return "ID-CHANGE"
		case OpServerIdent:
			return "SERVER-IDENT"
		case OpFoundSources:
			return "FOUND-SOURCES"
		}
	} else {
		switch o {
		case OpHello:
			return "HELLO"
		case OpSendingPart:
			return "SENDING-PART"
		case OpRequestParts:
			return "REQUEST-PART"
		case OpFileReqAnsNoFile:
			return "FILE-NOT-FOUND"
		case OpEndOfDownload:
			return "END-OF-DOWNLOAD"
		case OpAskSharedFiles:
			return "ASK-SHARED-FILES"
		case OpAskSharedFilesAns:
			return "ASK-SHARED-FILES-ANSWER"
		case OpHelloAnswer:
			return "HELLO-ANSWER"
		case OpSetReqFileID:
			return "SET-REQ-FILE-ID"
		case OpFileStatus:
			return "FILE-STATUS"
		case OpRequestFileName:
			return "REQUEST-FILE-NAME"
		case OpFileReqAnswer:
			return "FILE-NAME-ANSWER"
		case OpStartUploadReq:
			return "START-UPLOAD"
		case OpAcceptUploadReq:
			return "ACCEPT-UPLOAD"
		case OpCancelTransfer:
			return "CANCEL-TRANSFER"
		case OpOutOfPartRequests:
			return "OUT-OF-PART-REQUESTS"
		case OpQueueRank:
			return "QUEUE-RANK"
		case OpChatMessage:
			return "MESSAGE"
		case OpChangeClientID:
			return "CHANGE-CLIENT-ID"
		case OpHashSetRequest:
			return "HASHSET-REQUEST"
		case OpHashSetAnswer:
			return "HASHSET-ANSWER"
		}
	}
	return fmt.Sprintf("OP-0x%02X", byte(o))
}
