package logstore

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"path/filepath"

	"repro/internal/faultfs"
)

// The store manifest is the multi-shard recovery authority: one
// atomically-replaced, CRC-guarded file at <dir>/MANIFEST recording
// every shard's sealed segments and tail checkpoint. It turns recovery
// from "adopt whatever the directory holds" into a checked contract:
//
//   - a segment on disk the manifest never heard of (half-finished
//     rotation of a dying process, an operator copy) is moved into
//     <dir>/_quarantine/<shard>/ instead of silently joining — and
//     skewing — the campaign;
//   - a sealed segment the manifest promised but the disk lost is
//     reported as a Quarantine entry, so the gap is audited;
//   - a whole shard directory missing from the manifest is quarantined
//     wholesale.
//
// The manifest is updated at shard creation (before the directory
// exists, so the crash window leaves a benign empty entry rather than
// an unlisted directory) and at every rotation (after the new tail is
// started, so a crash in between is recognized by the tail+1-on-disk
// rule in openShard). File format: 8-byte magic, u32 length, u32 IEEE
// CRC32, JSON body; replacement is write-temp + rename. A store without
// a manifest (pre-manifest layout) adopts everything it finds and
// writes one; a corrupt manifest is itself treated as a crash artifact
// and rebuilt from the directory.

const (
	manifestName  = "MANIFEST"
	manifestMagic = "EDLMAN1\n"
	quarantineDir = "_quarantine"
)

// errManifestCorrupt marks a manifest that is present but fails its
// magic, CRC or JSON decode.
var errManifestCorrupt = errors.New("logstore: corrupt manifest")

// manifestShard is one shard's entry: its sealed segments (in order)
// and the sequence number of its tail (active) segment.
type manifestShard struct {
	Sealed []SegmentInfo `json:"sealed,omitempty"`
	Tail   uint64        `json:"tail"`
}

type manifestData struct {
	Shards map[string]manifestShard `json:"shards"`
}

// Quarantine records data the store refused to adopt on open. Openers
// running a live campaign should treat any entry as a stop-the-world
// signal (the daemons exit nonzero naming the shard); analysis tooling
// may choose to proceed on the audited remainder.
type Quarantine struct {
	// Shard is the shard the data belonged to.
	Shard string
	// Seq is the segment sequence, 0 when a whole directory or a
	// manifest-only entry is concerned.
	Seq uint64
	// Path is where the data now lives under <dir>/_quarantine, empty
	// when there was nothing on disk to move.
	Path string
	// Reason says why the data was refused.
	Reason string
}

// readManifest loads <dir>/MANIFEST. A missing file returns (nil, nil);
// bad magic, CRC or JSON returns errManifestCorrupt.
func readManifest(fsys faultfs.FS, dir string) (*manifestData, error) {
	b, err := fsys.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("logstore: reading manifest: %w", err)
	}
	hdr := len(manifestMagic) + 8
	if len(b) < hdr || string(b[:len(manifestMagic)]) != manifestMagic {
		return nil, errManifestCorrupt
	}
	n := binary.LittleEndian.Uint32(b[len(manifestMagic):])
	sum := binary.LittleEndian.Uint32(b[len(manifestMagic)+4:])
	body := b[hdr:]
	if uint32(len(body)) != n || crc32.ChecksumIEEE(body) != sum {
		return nil, errManifestCorrupt
	}
	var m manifestData
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, errManifestCorrupt
	}
	if m.Shards == nil {
		m.Shards = make(map[string]manifestShard)
	}
	return &m, nil
}

// writeManifest frames and atomically replaces <dir>/MANIFEST.
func writeManifest(fsys faultfs.FS, dir string, m *manifestData) error {
	body, err := json.Marshal(m)
	if err != nil {
		return err
	}
	b := make([]byte, 0, len(manifestMagic)+8+len(body))
	b = append(b, manifestMagic...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(body)))
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(body))
	b = append(b, body...)
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := fsys.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("logstore: writing manifest: %w", err)
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("logstore: writing manifest: %w", err)
	}
	return nil
}

// quarantineSegment moves one segment (and its sidecar, if any) from a
// shard directory into <storeDir>/_quarantine/<shard>/.
func quarantineSegment(fsys faultfs.FS, shardDir, shard string, seq uint64, reason string) (Quarantine, error) {
	qdir := filepath.Join(filepath.Dir(shardDir), quarantineDir, shard)
	if err := fsys.MkdirAll(qdir, 0o755); err != nil {
		return Quarantine{}, fmt.Errorf("logstore: quarantining %s/%s: %w", shard, segName(seq), err)
	}
	dst := filepath.Join(qdir, segName(seq))
	if err := fsys.Rename(filepath.Join(shardDir, segName(seq)), dst); err != nil {
		return Quarantine{}, fmt.Errorf("logstore: quarantining %s/%s: %w", shard, segName(seq), err)
	}
	// The sidecar follows its segment; it may legitimately not exist.
	if err := fsys.Rename(filepath.Join(shardDir, idxName(seq)), filepath.Join(qdir, idxName(seq))); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return Quarantine{}, err
	}
	return Quarantine{Shard: shard, Seq: seq, Path: dst, Reason: reason}, nil
}

// quarantineShardDir moves a whole shard directory into quarantine.
func quarantineShardDir(fsys faultfs.FS, dir, shard string) (Quarantine, error) {
	qroot := filepath.Join(dir, quarantineDir)
	if err := fsys.MkdirAll(qroot, 0o755); err != nil {
		return Quarantine{}, fmt.Errorf("logstore: quarantining shard %s: %w", shard, err)
	}
	dst := filepath.Join(qroot, shard)
	if err := fsys.Rename(filepath.Join(dir, shard), dst); err != nil {
		return Quarantine{}, fmt.Errorf("logstore: quarantining shard %s: %w", shard, err)
	}
	return Quarantine{Shard: shard, Path: dst, Reason: "shard directory not in manifest"}, nil
}

// noteShard records a brand-new shard in the manifest. Called before
// the shard directory exists: the crash window then leaves a manifest
// entry pointing at a missing, empty shard — benign, recreated on
// demand — instead of an unlisted directory open would quarantine.
func (s *Store) noteShard(name string) error {
	s.manMu.Lock()
	defer s.manMu.Unlock()
	if s.man == nil {
		s.man = &manifestData{Shards: make(map[string]manifestShard)}
	}
	if _, ok := s.man.Shards[name]; ok {
		return nil
	}
	s.man.Shards[name] = manifestShard{Tail: 1}
	return writeManifest(s.fs, s.dir, s.man)
}

// noteSealed records a rotation: prev joins the shard's sealed list and
// tail becomes its live segment. The in-memory manifest is updated
// first, so a failed write is retried in full by the next successful
// one (or by a heal's rewriteManifest).
func (s *Store) noteSealed(name string, prev SegmentInfo, tail uint64) error {
	s.manMu.Lock()
	defer s.manMu.Unlock()
	if s.man == nil {
		s.man = &manifestData{Shards: make(map[string]manifestShard)}
	}
	entry := s.man.Shards[name]
	entry.Sealed = append(entry.Sealed, prev)
	entry.Tail = tail
	s.man.Shards[name] = entry
	return writeManifest(s.fs, s.dir, s.man)
}

// rewriteManifest re-persists the in-memory manifest — the heal path's
// way of catching the file up after a failed note.
func (s *Store) rewriteManifest() error {
	s.manMu.Lock()
	defer s.manMu.Unlock()
	if s.man == nil {
		return nil
	}
	return writeManifest(s.fs, s.dir, s.man)
}

// Quarantined lists the data this store refused to adopt when it was
// opened. Daemons check it right after Open and refuse to run a
// campaign on a store with unexplained segments.
func (s *Store) Quarantined() []Quarantine {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Quarantine, len(s.quar))
	copy(out, s.quar)
	return out
}

// DroppedRecords sums the records every shard failed to persist — the
// store-side half of a degraded campaign's gap accounting.
func (s *Store) DroppedRecords() uint64 {
	s.mu.Lock()
	shards := make([]*Shard, 0, len(s.shards))
	for _, sh := range s.shards {
		shards = append(shards, sh)
	}
	s.mu.Unlock()
	var n uint64
	for _, sh := range shards {
		n += sh.Dropped()
	}
	return n
}
