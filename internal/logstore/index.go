package logstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"repro/internal/faultfs"
)

// Index sidecars persist a sealed segment's SegmentInfo as one small JSON
// object, so reopening a shard with thousands of segments costs one stat
// and one tiny read per segment instead of a full scan. Sidecars are
// advisory: a missing or stale one (size mismatch with the segment, e.g.
// after a crash between seal and sidecar write) is rebuilt by scanning.

// writeIndex persists info next to its segment, atomically via rename.
func writeIndex(fsys faultfs.FS, dir string, info SegmentInfo) error {
	b, err := json.Marshal(info)
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, idxName(info.Seq)+".tmp")
	if err := fsys.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return fsys.Rename(tmp, filepath.Join(dir, idxName(info.Seq)))
}

// loadIndex reads a sealed segment's sidecar and validates it against the
// segment's size; on any mismatch it falls back to scanning the segment
// (and repairs the sidecar). Rebuilds and recovery truncations report
// through m.
func loadIndex(fsys faultfs.FS, dir string, seq uint64, m storeMetrics) (SegmentInfo, error) {
	segPath := filepath.Join(dir, segName(seq))
	st, err := fsys.Stat(segPath)
	if err != nil {
		return SegmentInfo{}, err
	}
	b, err := fsys.ReadFile(filepath.Join(dir, idxName(seq)))
	if err == nil {
		var info SegmentInfo
		if jerr := json.Unmarshal(b, &info); jerr == nil && info.Seq == seq && info.Bytes == st.Size() {
			return info, nil
		}
	} else if !errors.Is(err, fs.ErrNotExist) {
		return SegmentInfo{}, err
	}
	// Missing or stale: rebuild from the segment itself.
	m.rebuilds.Inc()
	info, good, err := scanSegment(fsys, segPath, seq)
	if err != nil {
		return SegmentInfo{}, fmt.Errorf("logstore: rebuilding index of %s: %w", segPath, err)
	}
	if good != st.Size() {
		// A sealed segment normally has no torn tail (only the active one
		// can), but a crash can still cut a sealed file short of its last
		// flush. Truncate to the intact prefix so the sidecar stays valid.
		if terr := truncateFile(fsys, segPath, good); terr != nil {
			return SegmentInfo{}, terr
		}
		m.truncations.Inc()
	}
	info.Bytes = good
	if werr := writeIndex(fsys, dir, info); werr != nil {
		return SegmentInfo{}, werr
	}
	return info, nil
}

// truncateFile is path-level truncation through the VFS (which only
// exposes truncation on an open File).
func truncateFile(fsys faultfs.FS, path string, size int64) error {
	f, err := fsys.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
