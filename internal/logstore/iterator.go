package logstore

import (
	"container/heap"
	"errors"
	"io"
	"path/filepath"
	"time"

	"repro/internal/intern"
	"repro/internal/logging"
)

// Iterator streams the records of several shards k-way merged into
// timestamp order without materializing them: memory use is one open
// segment reader and one record per shard, regardless of campaign size.
// Ties are broken by shard position (lexicographic shard name), then by
// append order within a shard — the exact ordering contract of
// logging.Merge over per-honeypot slices.
type Iterator struct {
	cursors []*shardCursor
	h       iterHeap
	inited  bool
}

// newIterator builds a merged iterator over the given shards (already in
// tie-break order), bounded to [from, to) when the bounds are non-zero.
func newIterator(shards []*Shard, from, to time.Time) (*Iterator, error) {
	it := &Iterator{}
	// One interner spans the whole scan: every cursor's honeypot name,
	// server address and client-name strings are allocated once per
	// distinct value, not once per record.
	pool := intern.NewPool()
	for _, sh := range shards {
		segs, err := sh.snapshotFlushed()
		if err != nil {
			it.Close()
			return nil, err
		}
		it.cursors = append(it.cursors, &shardCursor{sh: sh, segs: segs, from: from, to: to, pool: pool})
	}
	return it, nil
}

// Next returns the next record in merged timestamp order; io.EOF marks
// the end of the stream.
func (it *Iterator) Next() (logging.Record, error) {
	if !it.inited {
		it.inited = true
		for i, c := range it.cursors {
			rec, err := c.next()
			if errors.Is(err, io.EOF) {
				continue
			}
			if err != nil {
				return logging.Record{}, err
			}
			it.h = append(it.h, iterItem{rec: rec, src: i})
		}
		heap.Init(&it.h)
	}
	if it.h.Len() == 0 {
		return logging.Record{}, io.EOF
	}
	top := it.h[0]
	rec, err := it.cursors[top.src].next()
	switch {
	case errors.Is(err, io.EOF):
		heap.Pop(&it.h)
	case err != nil:
		return logging.Record{}, err
	default:
		it.h[0] = iterItem{rec: rec, src: top.src}
		heap.Fix(&it.h, 0)
	}
	return top.rec, nil
}

// Close releases any open segment readers. The iterator is unusable
// afterwards.
func (it *Iterator) Close() error {
	var first error
	for _, c := range it.cursors {
		if err := c.close(); err != nil && first == nil {
			first = err
		}
	}
	it.cursors = nil
	it.h = nil
	return first
}

type iterItem struct {
	rec logging.Record
	src int
}

type iterHeap []iterItem

func (h iterHeap) Len() int { return len(h) }

func (h iterHeap) Less(i, j int) bool {
	if !h[i].rec.Time.Equal(h[j].rec.Time) {
		return h[i].rec.Time.Before(h[j].rec.Time)
	}
	return h[i].src < h[j].src
}

func (h iterHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *iterHeap) Push(x any) { *h = append(*h, x.(iterItem)) }

func (h *iterHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// shardCursor streams one shard's records in append order within the
// snapshot taken at iterator creation, skipping whole segments whose
// index falls outside the time window.
type shardCursor struct {
	sh       *Shard
	segs     []SegmentInfo
	from, to time.Time
	seg      int // index into segs of the segment being read
	r        *segmentReader
	pool     *intern.Pool // shared across the iterator's cursors
}

func (c *shardCursor) next() (logging.Record, error) {
	for {
		if c.r == nil {
			// Advance to the next segment that can contain records in
			// the window.
			for c.seg < len(c.segs) && !c.segs[c.seg].overlaps(c.from, c.to) {
				c.seg++
			}
			if c.seg >= len(c.segs) {
				return logging.Record{}, io.EOF
			}
			r, err := openSegmentReader(c.sh.fs, filepath.Join(c.sh.dir, segName(c.segs[c.seg].Seq)), 0, c.pool, c.sh.m)
			if errors.Is(err, io.EOF) {
				c.seg++
				continue
			}
			if err != nil {
				return logging.Record{}, err
			}
			c.r = r
		}
		si := c.segs[c.seg]
		if c.r.off >= si.Bytes {
			c.closeReader()
			c.seg++
			continue
		}
		rec, _, err := c.r.next()
		if errors.Is(err, io.EOF) {
			c.closeReader()
			c.seg++
			continue
		}
		if err != nil {
			return logging.Record{}, err
		}
		if !c.from.IsZero() && rec.Time.Before(c.from) {
			continue
		}
		if !c.to.IsZero() && !rec.Time.Before(c.to) {
			continue
		}
		return rec, nil
	}
}

func (c *shardCursor) closeReader() {
	if c.r != nil {
		c.r.Close()
		c.r = nil
	}
}

func (c *shardCursor) close() error {
	c.closeReader()
	return nil
}
