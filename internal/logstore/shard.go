package logstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/faultfs"
	"repro/internal/intern"
	"repro/internal/logging"
)

// Shard is one honeypot's append-only log: a directory of segments. It
// implements logging.Sink, so a honeypot writes through it directly; all
// methods are safe for concurrent use.
type Shard struct {
	fs    faultfs.FS
	dir   string
	name  string
	opt   Options
	store *Store       // owning store, nil for a standalone shard
	m     storeMetrics // pre-resolved telemetry (zero = disabled)

	mu     sync.Mutex
	sealed []SegmentInfo // all segments before the active one
	active SegmentInfo   // live index of the tail segment
	f      faultfs.File  // active segment, positioned at its end
	w      *bufio.Writer
	buf    []byte // frame scratch: [8-byte header][encoded record]
	closed bool
	err    error // sticky I/O error (logging.Sink has no error return)

	// Self-healing state: a sticky error is retried in place (rescan the
	// tail, truncate the torn part, resume) so a transient disk fault
	// costs records, not the rest of the campaign.
	failed  uint64 // appends failed since the last heal attempt
	healAt  uint64 // attempt the next heal after this many failures
	dropped uint64 // records this shard failed to persist
}

// openShard opens or creates the shard directory, recovering the active
// segment's torn tail if the last run crashed mid-append. With a
// manifest entry, the manifest is the authority: segments it does not
// list are quarantined (returned for the caller to surface), sealed
// segments it lists but the disk lost are reported the same way. With
// man == nil every segment found on disk is adopted (legacy stores,
// brand-new shards).
func openShard(fsys faultfs.FS, dir, name string, opt Options, man *manifestShard) (*Shard, []Quarantine, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("logstore: %w", err)
	}
	sh := &Shard{fs: fsys, dir: dir, name: name, opt: opt, m: newStoreMetrics(opt.Metrics), healAt: 1}

	seqs, err := listSegments(fsys, dir)
	if err != nil {
		return nil, nil, err
	}
	if man == nil {
		if len(seqs) == 0 {
			return sh, nil, sh.startSegment(1)
		}
		for _, seq := range seqs[:len(seqs)-1] {
			info, err := loadIndex(fsys, dir, seq, sh.m)
			if err != nil {
				return nil, nil, err
			}
			sh.sealed = append(sh.sealed, info)
		}
		_, err := sh.openTail(seqs[len(seqs)-1])
		return sh, nil, err
	}

	have := make(map[uint64]bool, len(seqs))
	for _, seq := range seqs {
		have[seq] = true
	}
	sealedSeqs := make([]uint64, 0, len(man.Sealed)+1)
	for _, si := range man.Sealed {
		sealedSeqs = append(sealedSeqs, si.Seq)
	}
	tail := man.Tail
	if tail == 0 {
		tail = 1
	}
	if have[tail+1] {
		// Crash between a rotation's new-segment create and its manifest
		// note: the successor already exists on disk, so the manifest's
		// tail is really sealed and the successor is the live tail.
		sealedSeqs = append(sealedSeqs, tail)
		tail++
	}
	var quar []Quarantine
	known := make(map[uint64]bool, len(sealedSeqs)+1)
	for _, seq := range sealedSeqs {
		known[seq] = true
		if !have[seq] {
			// The manifest promised a sealed segment the disk lost: its
			// records are gone — surface the gap instead of hiding it.
			sh.m.quarantines.Inc()
			quar = append(quar, Quarantine{Shard: name, Seq: seq, Reason: "sealed segment missing from disk"})
			continue
		}
		info, err := loadIndex(fsys, dir, seq, sh.m)
		if err != nil {
			return nil, quar, err
		}
		sh.sealed = append(sh.sealed, info)
	}
	known[tail] = true
	for _, seq := range seqs {
		if known[seq] {
			continue
		}
		// A segment the manifest never heard of (half-finished rotation of
		// a dying process, an operator copy, cross-wired shards): move it
		// aside rather than let it skew the campaign.
		q, err := quarantineSegment(fsys, dir, name, seq, "segment not in manifest")
		if err != nil {
			return nil, quar, err
		}
		sh.m.quarantines.Inc()
		quar = append(quar, q)
	}
	if !have[tail] {
		// The manifest named a tail that never reached the disk (crash
		// between the manifest note and the create): start it now.
		return sh, quar, sh.startSegment(tail)
	}
	_, err = sh.openTail(tail)
	return sh, quar, err
}

// openTail recovers the tail segment: scan it, truncate anything torn,
// reopen for appending at the last intact frame. Caller holds mu (or is
// the constructor).
func (sh *Shard) openTail(seq uint64) (SegmentInfo, error) {
	path := filepath.Join(sh.dir, segName(seq))
	info, good, err := scanSegment(sh.fs, path, seq)
	if err != nil && !errors.Is(err, errCorrupt) {
		return info, fmt.Errorf("logstore: recovering %s: %w", path, err)
	}
	if st, serr := sh.fs.Stat(path); serr == nil && st.Size() != good {
		// The tail held torn or corrupt bytes the truncation below will
		// drop — the crash-artifact case the recovery path exists for.
		sh.m.truncations.Inc()
	}
	// A corrupt frame in the tail segment is a crash artifact (partially
	// persisted append): recover by truncating at the last intact frame,
	// exactly like a short tail.
	f, err := sh.fs.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return info, err
	}
	if good == 0 {
		// The crash even tore the header; rewrite it.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return info, err
		}
		if _, err := f.Write([]byte(segMagic)); err != nil {
			f.Close()
			return info, err
		}
		good = segHeaderSize
	} else if err := f.Truncate(good); err != nil {
		f.Close()
		return info, err
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return info, err
	}
	info.Bytes = good
	sh.active = info
	sh.f = f
	sh.w = bufio.NewWriterSize(f, segBufSize)
	return info, nil
}

// listSegments returns the shard's segment sequence numbers in order.
func listSegments(fsys faultfs.FS, dir string) ([]uint64, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("logstore: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".seg") {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(name, ".seg"), 10, 64)
		if err != nil {
			continue // not ours
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// startSegment creates and opens a fresh segment file. Caller holds mu
// (or is the constructor).
func (sh *Shard) startSegment(seq uint64) error {
	path := filepath.Join(sh.dir, segName(seq))
	f, err := sh.fs.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if errors.Is(err, os.ErrExist) {
		// Leftover of a crashed or healed previous attempt to start this
		// segment (its magic write tore): recreate it in place.
		f, err = sh.fs.OpenFile(path, os.O_RDWR|os.O_TRUNC, 0o644)
	}
	if err != nil {
		return fmt.Errorf("logstore: %w", err)
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return err
	}
	sh.active = SegmentInfo{Seq: seq, Bytes: segHeaderSize}
	sh.f = f
	sh.w = bufio.NewWriterSize(f, segBufSize)
	return nil
}

// Name returns the shard's name (the honeypot ID).
func (sh *Shard) Name() string { return sh.name }

// Store returns the store this shard belongs to. The manager uses it to
// recognize handles whose honeypot already writes into the manager's own
// store, where collection has nothing to copy.
func (sh *Shard) Store() *Store { return sh.store }

// Append implements logging.Sink. Records are expected in non-decreasing
// timestamp order (honeypots emit them that way); the merged Iterator
// relies on it exactly like logging.Merge relies on sorted inputs. I/O
// failures stick and are reported by Err.
func (sh *Shard) Append(r logging.Record) {
	_ = sh.AppendRecord(r) // error is sticky; Err() reports it
}

// AppendRecord appends one record, rotating the active segment when it
// exceeds the size threshold.
func (sh *Shard) AppendRecord(r logging.Record) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.closed {
		return fmt.Errorf("logstore: shard %s is closed", sh.name)
	}
	if sh.err != nil {
		// Try to heal in place: the fault may have passed. Heal attempts
		// back off exponentially in failed-append counts so a dead disk
		// costs one cheap counter bump per record, not a rescan.
		sh.failed++
		if sh.failed < sh.healAt {
			sh.dropped++
			sh.m.dropped.Inc()
			return sh.err
		}
		sh.failed = 0
		sh.m.healAttempts.Inc()
		if err := sh.healLocked(); err != nil {
			if sh.healAt < 1024 {
				sh.healAt *= 2
			}
			sh.dropped++
			sh.m.dropped.Inc()
			return sh.err
		}
		sh.m.heals.Inc()
		sh.healAt = 1
	}
	// Build the whole frame in one scratch buffer: header placeholder,
	// then the record body, then backfill length and CRC.
	frame := append(sh.buf[:0], 0, 0, 0, 0, 0, 0, 0, 0)
	frame = logging.EncodeRecord(frame, r)
	sh.buf = frame
	body := frame[frameOverhead:]
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(body))
	if _, err := sh.w.Write(frame); err != nil {
		sh.err = err
		sh.dropped++
		sh.m.dropped.Inc()
		return err
	}
	sh.m.appends.Inc()
	sh.m.appendBytes.Add(uint64(len(frame)))
	sh.active.observe(r.Time)
	sh.active.Bytes += int64(len(frame))
	if sh.active.Bytes >= sh.opt.SegmentBytes {
		if err := sh.rotateLocked(); err != nil {
			sh.err = err
			return err
		}
	}
	return nil
}

// rotateLocked seals the active segment (flush, optional fsync, index
// sidecar) and starts the next one. Caller holds mu.
func (sh *Shard) rotateLocked() error {
	if err := sh.w.Flush(); err != nil {
		return err
	}
	if sh.opt.SyncOnRotate {
		if err := sh.f.Sync(); err != nil {
			return err
		}
	}
	if err := sh.f.Close(); err != nil {
		return err
	}
	if err := writeIndex(sh.fs, sh.dir, sh.active); err != nil {
		return err
	}
	prev := sh.active
	if err := sh.startSegment(prev.Seq + 1); err != nil {
		return err
	}
	sh.m.rotations.Inc()
	sh.sealed = append(sh.sealed, prev)
	if sh.store != nil {
		// The manifest seals the rotation: recovery trusts it over the
		// directory, so the note must land before appends continue.
		if err := sh.store.noteSealed(sh.name, prev, sh.active.Seq); err != nil {
			return err
		}
	}
	return nil
}

// healLocked tries to clear a sticky I/O error in place: the fault may
// have been transient (disk full, pulled mount, injected outage), so
// close the wounded tail, rescan it, truncate whatever tore and resume
// appending. Records acked into the write buffer but never persisted
// are gone; they join the dropped count, which Result/finalize surface
// as the campaign's audited gap. Caller holds mu.
func (sh *Shard) healLocked() error {
	if sh.f != nil {
		sh.f.Close() // best effort; the handle may be wounded
	}
	sh.f, sh.w = nil, nil
	before := sh.active
	info, err := sh.openTail(before.Seq)
	if err != nil {
		return err
	}
	if before.Records > info.Records {
		lost := before.Records - info.Records
		sh.dropped += lost
		sh.m.dropped.Add(lost)
	}
	if sh.store != nil {
		// A failed rotation may have left the manifest note unwritten;
		// healing is complete only once the manifest is current again.
		if err := sh.store.rewriteManifest(); err != nil {
			return err
		}
	}
	sh.err = nil
	return nil
}

// Heal attempts to clear a sticky I/O error immediately — the hook a
// supervisor (or the scenario engine's disk-restore action) calls when
// it believes the fault has passed. Without a sticky error it is a
// no-op.
func (sh *Shard) Heal() error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.err == nil || sh.closed {
		return nil
	}
	sh.m.healAttempts.Inc()
	if err := sh.healLocked(); err != nil {
		return err
	}
	sh.m.heals.Inc()
	sh.failed, sh.healAt = 0, 1
	return nil
}

// Dropped returns how many records this shard failed to persist: failed
// appends during sticky-error windows plus buffered records a heal's
// truncation could not save.
func (sh *Shard) Dropped() uint64 {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.dropped
}

// Err returns the sticky I/O error, if any append failed.
func (sh *Shard) Err() error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.err
}

// Flush pushes buffered appends to the OS so readers observe them.
func (sh *Shard) Flush() error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.flushLocked()
}

func (sh *Shard) flushLocked() error {
	if sh.closed || sh.w == nil {
		return nil
	}
	if err := sh.w.Flush(); err != nil {
		if sh.err == nil {
			sh.err = err
		}
		return err
	}
	return nil
}

// Sync flushes and fsyncs the active segment.
func (sh *Shard) Sync() error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := sh.flushLocked(); err != nil {
		return err
	}
	if sh.closed || sh.f == nil {
		return sh.err
	}
	return sh.f.Sync()
}

// Close flushes and closes the shard.
func (sh *Shard) Close() error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.closed {
		return nil
	}
	sh.closed = true
	if sh.w != nil {
		if err := sh.w.Flush(); err != nil {
			return err
		}
	}
	if sh.f != nil {
		return sh.f.Close()
	}
	return nil
}

// Count returns the total number of records in the shard.
func (sh *Shard) Count() uint64 {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	n := sh.active.Records
	for _, si := range sh.sealed {
		n += si.Records
	}
	return n
}

// Segments snapshots the shard's segment index, active segment last.
func (sh *Shard) Segments() []SegmentInfo {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	out := make([]SegmentInfo, 0, len(sh.sealed)+1)
	out = append(out, sh.sealed...)
	out = append(out, sh.active)
	return out
}

// End returns the checkpoint just past the last appended record.
func (sh *Shard) End() Checkpoint {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return Checkpoint{Seg: sh.active.Seq, Off: sh.active.Bytes}
}

// snapshotFlushed flushes buffered writes and snapshots the segment list
// atomically: every byte within the returned bounds is readable on disk.
func (sh *Shard) snapshotFlushed() ([]SegmentInfo, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := sh.flushLocked(); err != nil {
		return nil, err
	}
	segs := make([]SegmentInfo, 0, len(sh.sealed)+1)
	segs = append(segs, sh.sealed...)
	segs = append(segs, sh.active)
	return segs, nil
}

// ReadSince returns up to max records strictly after cp (the zero
// checkpoint reads from the start), plus the checkpoint to pass next
// time. It is the incremental-collection primitive: the caller owns the
// checkpoint, so a crashed and restarted collector resumes exactly where
// it left off and no record is delivered twice. Safe against concurrent
// appends.
func (sh *Shard) ReadSince(cp Checkpoint, max int) ([]logging.Record, Checkpoint, error) {
	if max <= 0 {
		max = 1 << 30
	}
	segs, err := sh.snapshotFlushed()
	if err != nil {
		return nil, cp, err
	}
	// Reconcile a checkpoint the shard no longer covers.
	last := segs[len(segs)-1]
	if cp.Seg > last.Seq {
		// Beyond the newest segment: only a wiped-and-recreated shard
		// looks like this (the acked records are gone either way), so
		// restart from the beginning rather than silently starving.
		cp = Checkpoint{}
	} else if cp.Seg == last.Seq && cp.Off > last.Bytes {
		// Past the tail's end within the same segment: crash recovery
		// truncated a torn tail the collector had already seen (flushed
		// but not fsynced). The torn records died with the crash; clamp
		// to the truncation point — which is exactly where new appends
		// resume — instead of resetting, which would re-send the whole
		// shard and duplicate everything already collected.
		cp.Off = last.Bytes
	}
	var out []logging.Record
	pool := intern.NewPool() // shared across the batch's segments
	for _, si := range segs {
		if len(out) >= max {
			break
		}
		if si.Seq < cp.Seg {
			continue
		}
		off := segHeaderSize
		if si.Seq == cp.Seg && cp.Off > off {
			off = cp.Off
		}
		if off < si.Bytes {
			next, err := sh.readSegment(si, off, max-len(out), pool, &out)
			if err != nil {
				return out, cp, err
			}
			cp = Checkpoint{Seg: si.Seq, Off: next}
			continue
		}
		// Empty or fully consumed segment: move the checkpoint past it so
		// the next call starts at the successor.
		cp = Checkpoint{Seg: si.Seq, Off: off}
	}
	return out, cp, nil
}

// readSegment appends records from one segment starting at byte offset
// off, stopping after limit records or at the snapshot bound si.Bytes
// (bytes appended after the snapshot wait for the next call). It returns
// the offset just past the last record consumed.
func (sh *Shard) readSegment(si SegmentInfo, off int64, limit int, pool *intern.Pool, out *[]logging.Record) (int64, error) {
	r, err := openSegmentReader(sh.fs, filepath.Join(sh.dir, segName(si.Seq)), off, pool, sh.m)
	if errors.Is(err, io.EOF) {
		return off, nil
	}
	if err != nil {
		return off, err
	}
	defer r.Close()
	n := 0
	for n < limit && r.off < si.Bytes {
		rec, next, err := r.next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return off, err
		}
		*out = append(*out, rec)
		off = next
		n++
	}
	return off, nil
}
