package logstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/intern"
	"repro/internal/logging"
)

// Shard is one honeypot's append-only log: a directory of segments. It
// implements logging.Sink, so a honeypot writes through it directly; all
// methods are safe for concurrent use.
type Shard struct {
	dir   string
	name  string
	opt   Options
	store *Store       // owning store, nil for a standalone shard
	m     storeMetrics // pre-resolved telemetry (zero = disabled)

	mu     sync.Mutex
	sealed []SegmentInfo // all segments before the active one
	active SegmentInfo   // live index of the tail segment
	f      *os.File      // active segment, positioned at its end
	w      *bufio.Writer
	buf    []byte // frame scratch: [8-byte header][encoded record]
	closed bool
	err    error // sticky I/O error (logging.Sink has no error return)
}

// openShard opens or creates the shard directory, recovering the active
// segment's torn tail if the last run crashed mid-append.
func openShard(dir, name string, opt Options) (*Shard, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("logstore: %w", err)
	}
	sh := &Shard{dir: dir, name: name, opt: opt, m: newStoreMetrics(opt.Metrics)}

	seqs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	if len(seqs) == 0 {
		return sh, sh.startSegment(1)
	}
	for _, seq := range seqs[:len(seqs)-1] {
		info, err := loadIndex(dir, seq, sh.m)
		if err != nil {
			return nil, err
		}
		sh.sealed = append(sh.sealed, info)
	}

	// Recover the tail segment: scan it, truncate anything torn, reopen
	// for appending at the last intact frame.
	last := seqs[len(seqs)-1]
	path := filepath.Join(dir, segName(last))
	info, good, err := scanSegment(path, last)
	if err != nil && !errors.Is(err, errCorrupt) {
		return nil, fmt.Errorf("logstore: recovering %s: %w", path, err)
	}
	if st, serr := os.Stat(path); serr == nil && st.Size() != good {
		// The tail held torn or corrupt bytes the truncation below will
		// drop — the crash-artifact case the recovery path exists for.
		sh.m.truncations.Inc()
	}
	// A corrupt frame in the tail segment is a crash artifact (partially
	// persisted append): recover by truncating at the last intact frame,
	// exactly like a short tail.
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if good == 0 {
		// The crash even tore the header; rewrite it.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.WriteString(segMagic); err != nil {
			f.Close()
			return nil, err
		}
		good = segHeaderSize
	} else if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	info.Bytes = good
	sh.active = info
	sh.f = f
	sh.w = bufio.NewWriterSize(f, segBufSize)
	return sh, nil
}

// listSegments returns the shard's segment sequence numbers in order.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("logstore: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".seg") {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(name, ".seg"), 10, 64)
		if err != nil {
			continue // not ours
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// startSegment creates and opens a fresh segment file. Caller holds mu
// (or is the constructor).
func (sh *Shard) startSegment(seq uint64) error {
	path := filepath.Join(sh.dir, segName(seq))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("logstore: %w", err)
	}
	if _, err := f.WriteString(segMagic); err != nil {
		f.Close()
		return err
	}
	sh.active = SegmentInfo{Seq: seq, Bytes: segHeaderSize}
	sh.f = f
	sh.w = bufio.NewWriterSize(f, segBufSize)
	return nil
}

// Name returns the shard's name (the honeypot ID).
func (sh *Shard) Name() string { return sh.name }

// Store returns the store this shard belongs to. The manager uses it to
// recognize handles whose honeypot already writes into the manager's own
// store, where collection has nothing to copy.
func (sh *Shard) Store() *Store { return sh.store }

// Append implements logging.Sink. Records are expected in non-decreasing
// timestamp order (honeypots emit them that way); the merged Iterator
// relies on it exactly like logging.Merge relies on sorted inputs. I/O
// failures stick and are reported by Err.
func (sh *Shard) Append(r logging.Record) {
	_ = sh.AppendRecord(r) // error is sticky; Err() reports it
}

// AppendRecord appends one record, rotating the active segment when it
// exceeds the size threshold.
func (sh *Shard) AppendRecord(r logging.Record) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.closed {
		return fmt.Errorf("logstore: shard %s is closed", sh.name)
	}
	if sh.err != nil {
		return sh.err
	}
	// Build the whole frame in one scratch buffer: header placeholder,
	// then the record body, then backfill length and CRC.
	frame := append(sh.buf[:0], 0, 0, 0, 0, 0, 0, 0, 0)
	frame = logging.EncodeRecord(frame, r)
	sh.buf = frame
	body := frame[frameOverhead:]
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(body))
	if _, err := sh.w.Write(frame); err != nil {
		sh.err = err
		return err
	}
	sh.m.appends.Inc()
	sh.m.appendBytes.Add(uint64(len(frame)))
	sh.active.observe(r.Time)
	sh.active.Bytes += int64(len(frame))
	if sh.active.Bytes >= sh.opt.SegmentBytes {
		if err := sh.rotateLocked(); err != nil {
			sh.err = err
			return err
		}
	}
	return nil
}

// rotateLocked seals the active segment (flush, optional fsync, index
// sidecar) and starts the next one. Caller holds mu.
func (sh *Shard) rotateLocked() error {
	if err := sh.w.Flush(); err != nil {
		return err
	}
	if sh.opt.SyncOnRotate {
		if err := sh.f.Sync(); err != nil {
			return err
		}
	}
	if err := sh.f.Close(); err != nil {
		return err
	}
	if err := writeIndex(sh.dir, sh.active); err != nil {
		return err
	}
	sh.m.rotations.Inc()
	sh.sealed = append(sh.sealed, sh.active)
	return sh.startSegment(sh.active.Seq + 1)
}

// Err returns the sticky I/O error, if any append failed.
func (sh *Shard) Err() error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.err
}

// Flush pushes buffered appends to the OS so readers observe them.
func (sh *Shard) Flush() error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.flushLocked()
}

func (sh *Shard) flushLocked() error {
	if sh.closed || sh.w == nil {
		return nil
	}
	if err := sh.w.Flush(); err != nil {
		if sh.err == nil {
			sh.err = err
		}
		return err
	}
	return nil
}

// Sync flushes and fsyncs the active segment.
func (sh *Shard) Sync() error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := sh.flushLocked(); err != nil {
		return err
	}
	if sh.closed {
		return nil
	}
	return sh.f.Sync()
}

// Close flushes and closes the shard.
func (sh *Shard) Close() error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.closed {
		return nil
	}
	sh.closed = true
	if sh.w != nil {
		if err := sh.w.Flush(); err != nil {
			return err
		}
	}
	if sh.f != nil {
		return sh.f.Close()
	}
	return nil
}

// Count returns the total number of records in the shard.
func (sh *Shard) Count() uint64 {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	n := sh.active.Records
	for _, si := range sh.sealed {
		n += si.Records
	}
	return n
}

// Segments snapshots the shard's segment index, active segment last.
func (sh *Shard) Segments() []SegmentInfo {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	out := make([]SegmentInfo, 0, len(sh.sealed)+1)
	out = append(out, sh.sealed...)
	out = append(out, sh.active)
	return out
}

// End returns the checkpoint just past the last appended record.
func (sh *Shard) End() Checkpoint {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return Checkpoint{Seg: sh.active.Seq, Off: sh.active.Bytes}
}

// snapshotFlushed flushes buffered writes and snapshots the segment list
// atomically: every byte within the returned bounds is readable on disk.
func (sh *Shard) snapshotFlushed() ([]SegmentInfo, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := sh.flushLocked(); err != nil {
		return nil, err
	}
	segs := make([]SegmentInfo, 0, len(sh.sealed)+1)
	segs = append(segs, sh.sealed...)
	segs = append(segs, sh.active)
	return segs, nil
}

// ReadSince returns up to max records strictly after cp (the zero
// checkpoint reads from the start), plus the checkpoint to pass next
// time. It is the incremental-collection primitive: the caller owns the
// checkpoint, so a crashed and restarted collector resumes exactly where
// it left off and no record is delivered twice. Safe against concurrent
// appends.
func (sh *Shard) ReadSince(cp Checkpoint, max int) ([]logging.Record, Checkpoint, error) {
	if max <= 0 {
		max = 1 << 30
	}
	segs, err := sh.snapshotFlushed()
	if err != nil {
		return nil, cp, err
	}
	// Reconcile a checkpoint the shard no longer covers.
	last := segs[len(segs)-1]
	if cp.Seg > last.Seq {
		// Beyond the newest segment: only a wiped-and-recreated shard
		// looks like this (the acked records are gone either way), so
		// restart from the beginning rather than silently starving.
		cp = Checkpoint{}
	} else if cp.Seg == last.Seq && cp.Off > last.Bytes {
		// Past the tail's end within the same segment: crash recovery
		// truncated a torn tail the collector had already seen (flushed
		// but not fsynced). The torn records died with the crash; clamp
		// to the truncation point — which is exactly where new appends
		// resume — instead of resetting, which would re-send the whole
		// shard and duplicate everything already collected.
		cp.Off = last.Bytes
	}
	var out []logging.Record
	pool := intern.NewPool() // shared across the batch's segments
	for _, si := range segs {
		if len(out) >= max {
			break
		}
		if si.Seq < cp.Seg {
			continue
		}
		off := segHeaderSize
		if si.Seq == cp.Seg && cp.Off > off {
			off = cp.Off
		}
		if off < si.Bytes {
			next, err := sh.readSegment(si, off, max-len(out), pool, &out)
			if err != nil {
				return out, cp, err
			}
			cp = Checkpoint{Seg: si.Seq, Off: next}
			continue
		}
		// Empty or fully consumed segment: move the checkpoint past it so
		// the next call starts at the successor.
		cp = Checkpoint{Seg: si.Seq, Off: off}
	}
	return out, cp, nil
}

// readSegment appends records from one segment starting at byte offset
// off, stopping after limit records or at the snapshot bound si.Bytes
// (bytes appended after the snapshot wait for the next call). It returns
// the offset just past the last record consumed.
func (sh *Shard) readSegment(si SegmentInfo, off int64, limit int, pool *intern.Pool, out *[]logging.Record) (int64, error) {
	r, err := openSegmentReader(filepath.Join(sh.dir, segName(si.Seq)), off, pool, sh.m)
	if errors.Is(err, io.EOF) {
		return off, nil
	}
	if err != nil {
		return off, err
	}
	defer r.Close()
	n := 0
	for n < limit && r.off < si.Bytes {
		rec, next, err := r.next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return off, err
		}
		*out = append(*out, rec)
		off = next
		n++
	}
	return off, nil
}
