package logstore

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultfs"
)

// lastSegPath returns the active segment file of a single-shard store.
func lastSegPath(t *testing.T, dir, shard string) string {
	t.Helper()
	seqs, err := listSegments(faultfs.OS{}, filepath.Join(dir, shard))
	if err != nil || len(seqs) == 0 {
		t.Fatalf("listing segments: %v (%d)", err, len(seqs))
	}
	return filepath.Join(dir, shard, segName(seqs[len(seqs)-1]))
}

// writeShard creates a store with n records in one shard and closes it,
// returning the record set.
func writeShard(t *testing.T, dir string, n int) []int {
	t.Helper()
	st, err := Open(dir, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	sh, _ := st.Shard("hp-00")
	ids := make([]int, n)
	for i := 0; i < n; i++ {
		ids[i] = i
		if err := sh.AppendRecord(rec("hp-00", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return ids
}

// reopenAndCount reopens the store, checks recovery, appends one more
// record and verifies the shard streams wantBefore+1 records cleanly.
func reopenAndCount(t *testing.T, dir string, wantBefore int) {
	t.Helper()
	st, err := Open(dir, smallOpts())
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer st.Close()
	sh, _ := st.Shard("hp-00")
	if n := int(sh.Count()); n != wantBefore {
		t.Fatalf("recovered %d records, want %d", n, wantBefore)
	}
	// Appends must resume cleanly after truncation.
	if err := sh.AppendRecord(rec("hp-00", 9999)); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	it, err := st.Iterator()
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, it)
	if len(got) != wantBefore+1 {
		t.Fatalf("stream after recovery: %d records, want %d", len(got), wantBefore+1)
	}
	if got[len(got)-1].PeerPort != 9999 {
		t.Error("post-recovery append not last in stream")
	}
}

func TestRecoveryTornTailTruncated(t *testing.T) {
	// Cut the active segment at every byte boundary of its final frame:
	// recovery must drop exactly the torn record and keep the rest.
	const n = 40
	base := t.TempDir()
	full := writeShard(t, filepath.Join(base, "full"), n)
	_ = full

	// Measure the last frame's extent from a pristine copy.
	refPath := lastSegPath(t, filepath.Join(base, "full"), "hp-00")
	ref, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	info, good, err := scanSegment(faultfs.OS{}, refPath, 1)
	if err != nil {
		t.Fatal(err)
	}
	if good != int64(len(ref)) {
		t.Fatalf("pristine segment scan: good=%d size=%d", good, len(ref))
	}
	recsInLast := int(info.Records)

	for _, cut := range []int64{1, segHeaderSize - 1, segHeaderSize, good - 1, good - 5, (segHeaderSize + good) / 2} {
		if cut >= good || cut < 0 {
			continue
		}
		dir := filepath.Join(base, "cut", segName(uint64(cut)))
		if _, err := os.Stat(dir); err == nil {
			continue
		}
		writeShard(t, dir, n)
		path := lastSegPath(t, dir, "hp-00")
		if err := os.Truncate(path, cut); err != nil {
			t.Fatal(err)
		}
		// Count intact records in the truncated file.
		intact, _, err := scanSegment(faultfs.OS{}, path, 1)
		if err != nil && !errors.Is(err, errCorrupt) {
			t.Fatalf("cut %d: scan: %v", cut, err)
		}
		// Records in sealed segments survive untouched.
		sealed := n - recsInLast
		reopenAndCount(t, dir, sealed+int(intact.Records))
	}
}

func TestRecoveryCorruptTailFrame(t *testing.T) {
	// Flip a byte inside the last frame's body: the CRC catches it and
	// recovery truncates that frame as a crash artifact.
	dir := t.TempDir()
	writeShard(t, dir, 25)
	path := lastSegPath(t, dir, "hp-00")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	info, good, err := scanSegment(faultfs.OS{}, path, 1)
	if err != nil {
		t.Fatal(err)
	}
	b[good-3] ^= 0xFF // inside the final frame's body
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	after, _, err := scanSegment(faultfs.OS{}, path, 1)
	if !errors.Is(err, errCorrupt) {
		t.Fatalf("scan of corrupt tail: %v", err)
	}
	if after.Records != info.Records-1 {
		t.Fatalf("intact prefix has %d records, want %d", after.Records, info.Records-1)
	}
	sealedRecords := 0
	st, err := Open(dir, smallOpts())
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	sh, _ := st.Shard("hp-00")
	for _, si := range sh.Segments()[:len(sh.Segments())-1] {
		sealedRecords += int(si.Records)
	}
	want := sealedRecords + int(after.Records)
	if n := int(sh.Count()); n != want {
		t.Errorf("recovered %d records, want %d", n, want)
	}
	st.Close()
	reopenAndCount(t, dir, want)
}

func TestRecoveryHeaderTorn(t *testing.T) {
	// Crash before the magic finished landing: the segment reads as
	// empty and the header is rewritten on reopen.
	dir := t.TempDir()
	writeShard(t, dir, 0)
	path := lastSegPath(t, dir, "hp-00")
	if err := os.Truncate(path, segHeaderSize/2); err != nil {
		t.Fatal(err)
	}
	reopenAndCount(t, dir, 0)
}

func TestRecoveryIdempotent(t *testing.T) {
	// Recovering twice in a row must not lose further data.
	dir := t.TempDir()
	writeShard(t, dir, 30)
	path := lastSegPath(t, dir, "hp-00")
	st, _ := os.Stat(path)
	if err := os.Truncate(path, st.Size()-2); err != nil {
		t.Fatal(err)
	}
	s1, err := Open(dir, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	c1 := int(s1.TotalRecords())
	s1.Close()
	s2, err := Open(dir, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if c2 := int(s2.TotalRecords()); c2 != c1 {
		t.Errorf("second recovery changed count: %d -> %d", c1, c2)
	}
	it, err := s2.Iterator()
	if err != nil {
		t.Fatal(err)
	}
	if got := drain(t, it); len(got) != c1 {
		t.Errorf("stream has %d records, want %d", len(got), c1)
	}
}

// Ensure scanSegment distinguishes clean EOF from mid-file corruption.
func TestScanCleanVsCorrupt(t *testing.T) {
	dir := t.TempDir()
	writeShard(t, dir, 10)
	path := lastSegPath(t, dir, "hp-00")
	if _, _, err := scanSegment(faultfs.OS{}, path, 1); err != nil {
		t.Errorf("clean segment scans with error: %v", err)
	}
	r, err := openSegmentReader(faultfs.OS{}, path, 0, nil, storeMetrics{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	n := 0
	for {
		if _, _, err := r.next(); err != nil {
			if !errors.Is(err, io.EOF) {
				t.Errorf("reader error on clean segment: %v", err)
			}
			break
		}
		n++
	}
	if n == 0 {
		t.Error("reader saw no records")
	}
}
