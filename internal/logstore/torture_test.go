package logstore

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultfs"
)

// The kill-point torture loop: run a fixed two-shard workload (small
// segments, so it rotates, seals sidecars and swaps the manifest many
// times), crash the filesystem at operation N for every N in a sampled
// matrix, reopen on a healthy filesystem and require that (a) nothing
// was quarantined — a pure crash must never look like foreign data —
// (b) each shard holds a strict prefix of its appended records, and
// (c) appends resume and round-trip.

const tortureAppends = 400

// tortureWorkload appends tortureAppends records alternating over two
// shards and closes the store. With a crashing FS it returns the first
// injected error, like a process dying mid-campaign.
func tortureWorkload(fsys faultfs.FS, dir string) error {
	st, err := Open(dir, Options{SegmentBytes: 1 << 10, FS: fsys})
	if err != nil {
		return err
	}
	for i := 0; i < tortureAppends; i++ {
		hp := "hp-00"
		if i%2 == 1 {
			hp = "hp-01"
		}
		sh, err := st.Shard(hp)
		if err != nil {
			return err
		}
		if err := sh.AppendRecord(rec(hp, i)); err != nil {
			return err
		}
	}
	return st.Close()
}

// verifyRecovered reopens dir on the real filesystem and asserts the
// post-crash invariants; tag names the kill point in failures.
func verifyRecovered(t *testing.T, dir, tag string) {
	t.Helper()
	st, err := Open(dir, Options{SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatalf("%s: reopen after crash: %v", tag, err)
	}
	defer st.Close()
	if q := st.Quarantined(); len(q) != 0 {
		t.Fatalf("%s: a crash must not quarantine anything, got %+v", tag, q)
	}
	// Every shard must hold a strict prefix of its appended sequence
	// (shard hp-00 got the even i, hp-01 the odd — PeerPort carries i).
	for _, hp := range st.ShardNames() {
		sh, err := st.Shard(hp)
		if err != nil {
			t.Fatalf("%s: %v", tag, err)
		}
		recs, _, err := sh.ReadSince(Checkpoint{}, 0)
		if err != nil {
			t.Fatalf("%s: reading %s: %v", tag, hp, err)
		}
		off := uint16(0)
		if hp == "hp-01" {
			off = 1
		}
		for j, r := range recs {
			if want := uint16(2*j) + off; r.PeerPort != want {
				t.Fatalf("%s: shard %s record %d: got seq %d, want %d (not a prefix)",
					tag, hp, j, r.PeerPort, want)
			}
		}
	}
	// Appends must resume and round-trip.
	for _, hp := range []string{"hp-00", "hp-01"} {
		sh, err := st.Shard(hp)
		if err != nil {
			t.Fatalf("%s: %v", tag, err)
		}
		before := sh.Count()
		if err := sh.AppendRecord(rec(hp, 9999)); err != nil {
			t.Fatalf("%s: append after recovery on %s: %v", tag, hp, err)
		}
		if err := sh.Flush(); err != nil {
			t.Fatalf("%s: %v", tag, err)
		}
		recs, _, err := sh.ReadSince(Checkpoint{}, 0)
		if err != nil {
			t.Fatalf("%s: %v", tag, err)
		}
		if uint64(len(recs)) != before+1 || recs[len(recs)-1].PeerPort != 9999 {
			t.Fatalf("%s: post-recovery append did not round-trip on %s (%d records, want %d)",
				tag, hp, len(recs), before+1)
		}
	}
}

func TestKillPointTorture(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	// Size the kill-point range once: the workload is deterministic, so
	// the op count is identical across seeds.
	counter := faultfs.CrashAfter(0, 0)
	if err := tortureWorkload(faultfs.Wrap(faultfs.OS{}, counter), t.TempDir()); err != nil {
		t.Fatalf("fault-free workload: %v", err)
	}
	total := counter.Ops()
	if total < 100 {
		t.Fatalf("workload too small to torture: %d mutating ops", total)
	}
	// Sample kill points so the matrix stays >= 200 across the seeds.
	stride := total * int64(len(seeds)) / 200
	if stride < 1 {
		stride = 1
	}
	points := 0
	for _, seed := range seeds {
		// Stagger the sampled points per seed so the union covers more
		// distinct operations than one seed's stride would.
		for p := 1 + seed%stride; p <= total; p += stride {
			points++
			dir := t.TempDir()
			inj := faultfs.CrashAfter(p, seed)
			err := tortureWorkload(faultfs.Wrap(faultfs.OS{}, inj), dir)
			if !inj.Crashed() {
				t.Fatalf("seed %d kill-point %d/%d never fired", seed, p, total)
			}
			if err != nil && !errors.Is(err, faultfs.ErrCrashed) {
				// The injected crash may surface wrapped, or be absorbed
				// into a sticky shard error; any error is acceptable, a
				// missing one only means the workload died on Close.
				t.Logf("seed %d kill-point %d: workload error %v", seed, p, err)
			}
			verifyRecovered(t, dir, tagOf(seed, p))
		}
	}
	if points < 200 {
		t.Fatalf("only %d kill points exercised, want >= 200", points)
	}
}

func tagOf(seed, p int64) string {
	return "seed=" + itoa(seed) + " op=" + itoa(p)
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestDoubleCrashDuringRecovery crashes the workload, then crashes the
// recovery of the crashed store at every mutating operation recovery
// performs, and requires the third, healthy open to still recover.
func TestDoubleCrashDuringRecovery(t *testing.T) {
	dirty := t.TempDir()
	inj := faultfs.CrashAfter(120, 99)
	tortureWorkload(faultfs.Wrap(faultfs.OS{}, inj), dirty)
	if !inj.Crashed() {
		t.Fatal("first crash never fired")
	}
	// Count recovery's own mutating ops on a copy of the dirty store.
	probe := t.TempDir()
	if err := os.CopyFS(probe, os.DirFS(dirty)); err != nil {
		t.Fatal(err)
	}
	counter := faultfs.CrashAfter(0, 0)
	st, err := Open(probe, Options{SegmentBytes: 1 << 10, FS: faultfs.Wrap(faultfs.OS{}, counter)})
	if err != nil {
		t.Fatalf("probe recovery: %v", err)
	}
	st.Close()
	recOps := counter.Ops()
	if recOps == 0 {
		t.Fatal("recovery performed no mutating ops; the double-crash loop is vacuous")
	}
	for p := int64(1); p <= recOps; p++ {
		dir := t.TempDir()
		if err := os.CopyFS(dir, os.DirFS(dirty)); err != nil {
			t.Fatal(err)
		}
		inj := faultfs.CrashAfter(p, p)
		st, err := Open(dir, Options{SegmentBytes: 1 << 10, FS: faultfs.Wrap(faultfs.OS{}, inj)})
		if err == nil {
			// Recovery got past its mutating ops before the kill point hit
			// (op counts can shift on the copied layout); close and move on.
			st.Close()
		}
		verifyRecovered(t, dir, "recovery-op="+itoa(p))
	}
}

// TestShardSelfHealsAfterTransientFault pulls the disk out from under
// one shard mid-campaign, pushes it back, and requires the shard to
// resume appending with the gap accounted in Dropped.
func TestShardSelfHealsAfterTransientFault(t *testing.T) {
	sw := faultfs.NewSwitch()
	st, err := Open(t.TempDir(), Options{SegmentBytes: 1 << 10, FS: faultfs.Wrap(faultfs.OS{}, sw)})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sh, err := st.Shard("hp-00")
	if err != nil {
		t.Fatal(err)
	}
	deny := string(filepath.Separator) + "hp-00" + string(filepath.Separator)
	appended := 0
	for i := 0; i < 50; i++ {
		if err := sh.AppendRecord(rec("hp-00", appended)); err != nil {
			t.Fatal(err)
		}
		appended++
	}
	sw.Deny(deny)
	failed := 0
	for i := 0; i < 50; i++ {
		if err := sh.AppendRecord(rec("hp-00", appended+failed)); err != nil {
			failed++
		}
	}
	if failed == 0 || sh.Err() == nil {
		t.Fatalf("denied shard kept appending (%d failures, err %v)", failed, sh.Err())
	}
	sw.Allow(deny)
	if err := sh.Heal(); err != nil {
		t.Fatalf("heal after fault cleared: %v", err)
	}
	if sh.Err() != nil {
		t.Fatalf("sticky error survived heal: %v", sh.Err())
	}
	if sh.Dropped() == 0 {
		t.Fatal("failed appends must be accounted as dropped")
	}
	for i := 0; i < 50; i++ {
		if err := sh.AppendRecord(rec("hp-00", 1000+i)); err != nil {
			t.Fatalf("append after heal: %v", err)
		}
	}
	if err := sh.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, _, err := sh.ReadSince(Checkpoint{}, 0)
	if err != nil {
		t.Fatalf("reading healed shard: %v", err)
	}
	// Exact gap accounting. During the deny window an append "succeeds"
	// whenever it fits in the write buffer without forcing a flush, so
	// acked = the 100 error-free appends + the silent ones; the heal then
	// loses exactly what sat in that buffer — and everything lost (failed
	// appends + buffered) is in Dropped. Conservation: acked appends ==
	// records on disk + buffer-lost.
	acked := 100 + (50 - failed)
	bufferLost := int(sh.Dropped()) - failed
	if bufferLost < 0 {
		t.Fatalf("dropped %d < %d failed appends", sh.Dropped(), failed)
	}
	if len(recs) != acked-bufferLost {
		t.Fatalf("healed shard holds %d records, want %d (%d acked - %d buffer-lost)",
			len(recs), acked-bufferLost, acked, bufferLost)
	}
	if got := recs[len(recs)-1].PeerPort; got != 1000+49 {
		t.Fatalf("last record is seq %d, want %d", got, 1000+49)
	}
	if st.DroppedRecords() != sh.Dropped() {
		t.Fatalf("store dropped %d != shard dropped %d", st.DroppedRecords(), sh.Dropped())
	}
}

// TestAppendPathHealsWithoutExplicitHeal lets the append path's own
// backoff recover once the fault passes — no supervisor involved.
func TestAppendPathHealsWithoutExplicitHeal(t *testing.T) {
	sw := faultfs.NewSwitch()
	st, err := Open(t.TempDir(), Options{SegmentBytes: 1 << 10, FS: faultfs.Wrap(faultfs.OS{}, sw)})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sh, err := st.Shard("hp-00")
	if err != nil {
		t.Fatal(err)
	}
	deny := string(filepath.Separator) + "hp-00" + string(filepath.Separator)
	for i := 0; i < 20; i++ {
		sh.Append(rec("hp-00", i))
	}
	sw.Deny(deny)
	for i := 0; i < 10; i++ {
		sh.Append(rec("hp-00", 100+i))
	}
	sw.Allow(deny)
	// The heal backoff doubles per failed attempt; a bounded number of
	// further appends must clear the sticky error on their own.
	healed := false
	for i := 0; i < 2000 && !healed; i++ {
		sh.Append(rec("hp-00", 200+i))
		healed = sh.Err() == nil
	}
	if !healed {
		t.Fatalf("append path never healed: %v", sh.Err())
	}
	if sh.Dropped() == 0 {
		t.Fatal("fault window must be accounted as dropped")
	}
}

// TestSegmentMissingFromManifestQuarantined plants a segment the
// manifest never heard of and requires open to move it aside, not
// merge it into the campaign.
func TestSegmentMissingFromManifestQuarantined(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	sh, err := st.Shard("hp-00")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := sh.AppendRecord(rec("hp-00", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// A foreign segment appears (operator copy, cross-wired shard).
	shardDir := filepath.Join(dir, "hp-00")
	seg1, err := os.ReadFile(filepath.Join(shardDir, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	rogue := filepath.Join(shardDir, segName(99))
	if err := os.WriteFile(rogue, seg1, 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	q := st2.Quarantined()
	if len(q) != 1 || q[0].Shard != "hp-00" || q[0].Seq != 99 {
		t.Fatalf("quarantine = %+v, want segment 99 of hp-00", q)
	}
	if _, err := os.Stat(rogue); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("rogue segment still in the shard dir: %v", err)
	}
	if _, err := os.Stat(q[0].Path); err != nil {
		t.Fatalf("quarantined copy missing: %v", err)
	}
	// The dataset is exactly the un-poisoned campaign.
	sh2, err := st2.Shard("hp-00")
	if err != nil {
		t.Fatal(err)
	}
	if got := sh2.Count(); got != 200 {
		t.Fatalf("campaign has %d records, want 200", got)
	}
	recs, _, err := sh2.ReadSince(Checkpoint{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		if r.PeerPort != uint16(i) {
			t.Fatalf("record %d out of order after quarantine", i)
		}
	}
}
