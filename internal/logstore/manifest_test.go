package logstore

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/obs"
)

// The manifest recovery matrix: each test plants one specific crash or
// corruption artifact in a closed store and asserts the reopen resolves
// it — adopting, rebuilding, truncating or quarantining — without ever
// surfacing a record the artifact could have invented.

func TestZeroLengthTailSegment(t *testing.T) {
	// A crash right after startSegment created the tail but before the
	// magic landed leaves a zero-byte file. The reopen must rewrite the
	// header and resume appends; sealed records survive untouched.
	dir := t.TempDir()
	writeShard(t, dir, 30)
	path := lastSegPath(t, dir, "hp-00")
	if err := os.Truncate(path, 0); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	sh, _ := st.Shard("hp-00")
	sealed := 0
	for _, si := range sh.sealed {
		sealed += int(si.Records)
	}
	if n := int(sh.Count()); n != sealed {
		t.Fatalf("recovered %d records, want %d (sealed only)", n, sealed)
	}
	if q := st.Quarantined(); len(q) != 0 {
		t.Fatalf("zero-length tail quarantined: %+v", q)
	}
	st.Close()
	reopenAndCount(t, dir, sealed)
}

func TestTruncatedIndexSidecarRebuilt(t *testing.T) {
	// A sidecar cut mid-JSON (crash during the pre-rename write, or a
	// torn legacy store) must not poison recovery: the legacy adoption
	// path rescans the segment and repairs the sidecar.
	dir := t.TempDir()
	writeShard(t, dir, 30)
	seqs, err := listSegments(faultfs.OS{}, filepath.Join(dir, "hp-00"))
	if err != nil || len(seqs) < 3 {
		t.Fatalf("want several segments, got %d (%v)", len(seqs), err)
	}
	idx := filepath.Join(dir, "hp-00", idxName(seqs[0]))
	b, err := os.ReadFile(idx)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(idx, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	// Drop the manifest so the reopen takes the sidecar-reading path.
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	opt := smallOpts()
	opt.Metrics = reg
	st, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if n := int(st.TotalRecords()); n != 30 {
		t.Fatalf("recovered %d records, want 30", n)
	}
	if got := reg.Counter("logstore.index.rebuilds").Load(); got == 0 {
		t.Error("truncated sidecar did not count as an index rebuild")
	}
	// The repaired sidecar must now parse as long as the original.
	fixed, err := os.ReadFile(idx)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixed) <= len(b)/2 {
		t.Error("sidecar was not rewritten")
	}
}

func TestManifestDeletedLegacyAdoption(t *testing.T) {
	// A pre-manifest store (or an operator rm) has no MANIFEST: the open
	// adopts every segment it finds and writes one.
	dir := t.TempDir()
	writeShard(t, dir, 40)
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if n := int(st.TotalRecords()); n != 40 {
		t.Fatalf("adopted %d records, want 40", n)
	}
	if q := st.Quarantined(); len(q) != 0 {
		t.Fatalf("legacy adoption quarantined: %+v", q)
	}
	st.Close()
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err != nil {
		t.Fatalf("manifest not rewritten after adoption: %v", err)
	}
	reopenAndCount(t, dir, 40)
}

func TestManifestCorruptRebuilt(t *testing.T) {
	// A torn manifest replace (bad CRC) is a crash artifact, not a fatal
	// condition: the open rebuilds it from the directory.
	dir := t.TempDir()
	writeShard(t, dir, 40)
	path := filepath.Join(dir, manifestName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	opt := smallOpts()
	opt.Metrics = reg
	st, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("open with corrupt manifest: %v", err)
	}
	defer st.Close()
	if n := int(st.TotalRecords()); n != 40 {
		t.Fatalf("rebuilt store holds %d records, want 40", n)
	}
	if q := st.Quarantined(); len(q) != 0 {
		t.Fatalf("rebuild quarantined: %+v", q)
	}
	if got := reg.Counter("logstore.manifest.rebuilds").Load(); got != 1 {
		t.Errorf("manifest rebuilds = %d, want 1", got)
	}
}

func TestSealedSegmentMissingQuarantine(t *testing.T) {
	// The manifest promised a sealed segment the disk lost: the gap is
	// reported (audited), the remainder stays readable.
	dir := t.TempDir()
	writeShard(t, dir, 40)
	seqs, err := listSegments(faultfs.OS{}, filepath.Join(dir, "hp-00"))
	if err != nil || len(seqs) < 3 {
		t.Fatalf("want several segments, got %d (%v)", len(seqs), err)
	}
	victim := seqs[1]
	if err := os.Remove(filepath.Join(dir, "hp-00", segName(victim))); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, smallOpts())
	if err != nil {
		t.Fatalf("open with missing sealed segment: %v", err)
	}
	defer st.Close()
	q := st.Quarantined()
	if len(q) != 1 || q[0].Shard != "hp-00" || q[0].Seq != victim {
		t.Fatalf("quarantine = %+v, want one entry for hp-00/%d", q, victim)
	}
	if !strings.Contains(q[0].Reason, "missing") {
		t.Errorf("reason %q does not name the missing segment", q[0].Reason)
	}
	// The surviving records still stream in order.
	it, err := st.Iterator()
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, it)
	if len(got) == 0 || len(got) >= 40 {
		t.Fatalf("remainder streams %d records, want a proper nonzero subset of 40", len(got))
	}
	last := -1
	for _, r := range got {
		if int(r.PeerPort) <= last {
			t.Fatalf("remainder out of order at port %d after %d", r.PeerPort, last)
		}
		last = int(r.PeerPort)
	}
}

func TestUnknownShardDirQuarantined(t *testing.T) {
	// A directory the manifest never heard of (half-created shard of a
	// dying process, an operator copy) is moved aside wholesale.
	dir := t.TempDir()
	writeShard(t, dir, 20)
	rogue := filepath.Join(dir, "hp-rogue")
	if err := os.MkdirAll(rogue, 0o755); err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile(filepath.Join(dir, "hp-00", segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(rogue, segName(1)), src, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, smallOpts())
	if err != nil {
		t.Fatalf("open with rogue shard dir: %v", err)
	}
	defer st.Close()
	q := st.Quarantined()
	if len(q) != 1 || q[0].Shard != "hp-rogue" {
		t.Fatalf("quarantine = %+v, want one entry for hp-rogue", q)
	}
	if _, err := os.Stat(rogue); !os.IsNotExist(err) {
		t.Error("rogue directory still present in the store")
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, "hp-rogue", segName(1))); err != nil {
		t.Errorf("rogue segment not in quarantine: %v", err)
	}
	if names := st.ShardNames(); len(names) != 1 || names[0] != "hp-00" {
		t.Fatalf("shards after quarantine = %v, want [hp-00]", names)
	}
	if n := int(st.TotalRecords()); n != 20 {
		t.Fatalf("store holds %d records, want 20", n)
	}
}
