package logstore

import (
	"fmt"

	"repro/internal/logging"
)

// AppendRecord appends r into the shard named by its Honeypot field,
// creating the shard on first sight. This is the write side of dataset
// export: an anonymized finalize stream teed through here lands in a
// store whose merged Iterator replays the exact stream order (ties
// break by shard name, matching the finalize merge), ready for later
// streaming analysis.
func (s *Store) AppendRecord(r logging.Record) error {
	name := r.Honeypot
	if name == "" {
		return fmt.Errorf("logstore: cannot shard a record with no honeypot id")
	}
	sh, err := s.Shard(name)
	if err != nil {
		return err
	}
	return sh.AppendRecord(r)
}
