package logstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"repro/internal/faultfs"
	"repro/internal/intern"
	"repro/internal/logging"
)

// Segment file format: an 8-byte magic, then a sequence of CRC frames.
// Frame: [u32 little-endian body length][u32 IEEE crc32 of body][body],
// body being logging.EncodeRecord bytes.
const (
	segMagic      = "EDLSEG1\n"
	segHeaderSize = int64(len(segMagic))
	frameOverhead = 8
	// maxFrameBytes bounds one record's encoding (matches the logging
	// stream codec's limit); larger lengths mark a corrupt frame.
	maxFrameBytes = 64 << 20
	// segBufSize sizes the bufio layers on the segment hot paths, append
	// and scan alike. Frames are ~150 bytes, so 256 KiB keeps the syscall
	// rate (the paths' actual cost; see BenchmarkLogstoreIngest /
	// BenchmarkLogstoreScan) three orders of magnitude below the record
	// rate. Readers call Flush/snapshotFlushed, so write buffering never
	// hides records from collection.
	segBufSize = 256 << 10
)

// segName formats a segment's file name from its sequence number.
func segName(seq uint64) string { return fmt.Sprintf("%08d.seg", seq) }

// idxName formats the index sidecar name of a segment.
func idxName(seq uint64) string { return fmt.Sprintf("%08d.idx", seq) }

// errCorrupt marks a frame that is present but fails its CRC or bounds:
// unlike a torn tail, this is real corruption mid-file.
var errCorrupt = errors.New("logstore: corrupt segment frame")

// segmentReader streams records out of one segment file. The frame body
// buffer is reused across records, and when a pool is set the
// low-cardinality string columns are interned through it.
type segmentReader struct {
	f    faultfs.File
	br   *bufio.Reader
	off  int64 // offset of the next unread frame
	hdr  [frameOverhead]byte
	buf  []byte
	pool *intern.Pool // nil: decode without interning
	m    storeMetrics // scan telemetry (zero = disabled)
}

// openSegmentReader opens the segment at path positioned at off (0 means
// "start of records", i.e. just past the header, with the magic checked).
// A non-nil pool — typically shared across the segments and shards of
// one scan — deduplicates the honeypot/server/peer-name strings.
func openSegmentReader(fsys faultfs.FS, path string, off int64, pool *intern.Pool, m storeMetrics) (*segmentReader, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	r := &segmentReader{f: f, pool: pool, m: m}
	if off <= 0 {
		off = segHeaderSize
		var magic [segHeaderSize]byte
		if _, err := io.ReadFull(f, magic[:]); err != nil {
			f.Close()
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				// Shorter than the header: an empty segment caught by a
				// crash before the magic landed. Treat as empty.
				return nil, io.EOF
			}
			return nil, err
		}
		if string(magic[:]) != segMagic {
			f.Close()
			return nil, fmt.Errorf("logstore: %s: bad segment magic", path)
		}
	} else if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	r.off = off
	r.br = bufio.NewReaderSize(f, segBufSize)
	return r, nil
}

// next returns the next record and the offset just past its frame.
// io.EOF marks a clean end; a torn final frame also reads as io.EOF (the
// writer side truncates it on recovery); a CRC mismatch is errCorrupt.
func (r *segmentReader) next() (logging.Record, int64, error) {
	if _, err := io.ReadFull(r.br, r.hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return logging.Record{}, r.off, io.EOF // torn header
		}
		return logging.Record{}, r.off, err
	}
	n := binary.LittleEndian.Uint32(r.hdr[:4])
	sum := binary.LittleEndian.Uint32(r.hdr[4:])
	if n > maxFrameBytes {
		return logging.Record{}, r.off, errCorrupt
	}
	if cap(r.buf) < int(n) {
		r.buf = make([]byte, n)
	}
	body := r.buf[:n]
	if _, err := io.ReadFull(r.br, body); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return logging.Record{}, r.off, io.EOF // torn body
		}
		return logging.Record{}, r.off, err
	}
	if crc32.ChecksumIEEE(body) != sum {
		return logging.Record{}, r.off, errCorrupt
	}
	rec, err := logging.DecodeRecordInterned(body, r.pool)
	if err != nil {
		return logging.Record{}, r.off, fmt.Errorf("%w: %v", errCorrupt, err)
	}
	r.m.scanRecords.Inc()
	r.m.scanBytes.Add(frameOverhead + uint64(n))
	r.off += frameOverhead + int64(n)
	return rec, r.off, nil
}

func (r *segmentReader) Close() error { return r.f.Close() }

// scanSegment walks every frame of a segment and returns its index info
// plus the offset just past the last intact frame. A torn tail (partial
// header or body at the very end) stops the scan without error; corrupt
// frames mid-file surface as errCorrupt.
func scanSegment(fsys faultfs.FS, path string, seq uint64) (SegmentInfo, int64, error) {
	info := SegmentInfo{Seq: seq}
	r, err := openSegmentReader(fsys, path, 0, intern.NewPool(), storeMetrics{})
	if errors.Is(err, io.EOF) {
		return info, 0, nil // shorter than the magic: empty
	}
	if err != nil {
		return info, 0, err
	}
	defer r.Close()
	good := segHeaderSize
	for {
		rec, off, err := r.next()
		if errors.Is(err, io.EOF) {
			return info, good, nil
		}
		if err != nil {
			return info, good, err
		}
		info.observe(rec.Time)
		good = off
	}
}

// SegmentInfo is the sparse index of one segment: enough to skip it
// during time-bounded scans and to size collection batches.
type SegmentInfo struct {
	// Seq is the segment's sequence number within its shard.
	Seq uint64 `json:"seq"`
	// Records is the number of intact records.
	Records uint64 `json:"records"`
	// MinUnixNano and MaxUnixNano bound the record timestamps (both zero
	// when the segment is empty).
	MinUnixNano int64 `json:"min_unix_nano"`
	MaxUnixNano int64 `json:"max_unix_nano"`
	// Bytes is the segment file size covered by the index; a mismatch
	// with the on-disk size marks the sidecar stale.
	Bytes int64 `json:"bytes"`
}

func (si *SegmentInfo) observe(t time.Time) {
	ns := t.UnixNano()
	if si.Records == 0 || ns < si.MinUnixNano {
		si.MinUnixNano = ns
	}
	if si.Records == 0 || ns > si.MaxUnixNano {
		si.MaxUnixNano = ns
	}
	si.Records++
}

// MinTime returns the earliest record timestamp.
func (si SegmentInfo) MinTime() time.Time { return time.Unix(0, si.MinUnixNano).UTC() }

// MaxTime returns the latest record timestamp.
func (si SegmentInfo) MaxTime() time.Time { return time.Unix(0, si.MaxUnixNano).UTC() }

// overlaps reports whether any record in [MinTime, MaxTime] can fall in
// the half-open window [from, to); zero bounds are open.
func (si SegmentInfo) overlaps(from, to time.Time) bool {
	if si.Records == 0 {
		return false
	}
	if !from.IsZero() && si.MaxUnixNano < from.UnixNano() {
		return false
	}
	if !to.IsZero() && si.MinUnixNano >= to.UnixNano() {
		return false
	}
	return true
}
