package logstore

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/ed2k"
	"repro/internal/faultfs"
	"repro/internal/logging"
)

var t0 = time.Date(2008, 10, 1, 0, 0, 0, 0, time.UTC)

// rec builds a deterministic record for shard hp at sequence i.
func rec(hp string, i int) logging.Record {
	return logging.Record{
		Time:     t0.Add(time.Duration(i) * time.Second),
		Honeypot: hp,
		Kind:     logging.KindHello,
		PeerIP:   "peer-" + hp,
		PeerPort: uint16(i),
		UserHash: ed2k.NewUserHash(hp).String(),
		FileHash: ed2k.SyntheticHash(hp),
		FileName: "file.avi",
		Server:   "10.0.0.1:4661",
	}
}

// smallOpts rotates aggressively so even small tests exercise multiple
// segments.
func smallOpts() Options { return Options{SegmentBytes: 1 << 10} }

func drain(t *testing.T, it *Iterator) []logging.Record {
	t.Helper()
	defer it.Close()
	var out []logging.Record
	for {
		r, err := it.Next()
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatalf("iterator: %v", err)
		}
		out = append(out, r)
	}
}

func TestAppendIterateRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir(), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// Three shards with interleaved timestamps, enough volume to rotate.
	shardIDs := []string{"hp-00", "hp-01", "hp-02"}
	perShard := map[string][]logging.Record{}
	for i := 0; i < 300; i++ {
		hp := shardIDs[i%3]
		r := rec(hp, i)
		perShard[hp] = append(perShard[hp], r)
		sh, err := st.Shard(hp)
		if err != nil {
			t.Fatal(err)
		}
		if err := sh.AppendRecord(r); err != nil {
			t.Fatal(err)
		}
	}

	want := logging.Merge(perShard["hp-00"], perShard["hp-01"], perShard["hp-02"])
	it, err := st.Iterator()
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, it)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("iterator != logging.Merge: got %d records, want %d", len(got), len(want))
	}
	if n := st.TotalRecords(); n != 300 {
		t.Errorf("TotalRecords = %d, want 300", n)
	}

	// The volume must have rotated: multiple segments with sidecars.
	sh, _ := st.Shard("hp-00")
	segs := sh.Segments()
	if len(segs) < 2 {
		t.Fatalf("expected rotation, got %d segments", len(segs))
	}
	for _, si := range segs[:len(segs)-1] {
		if _, err := os.Stat(filepath.Join(sh.dir, idxName(si.Seq))); err != nil {
			t.Errorf("sealed segment %d lacks index sidecar: %v", si.Seq, err)
		}
		if si.Records == 0 || si.MinUnixNano > si.MaxUnixNano {
			t.Errorf("segment %d index implausible: %+v", si.Seq, si)
		}
	}
}

func TestReopenPreservesRecords(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	sh, _ := st.Shard("hp-00")
	var want []logging.Record
	for i := 0; i < 120; i++ {
		r := rec("hp-00", i)
		want = append(want, r)
		sh.Append(r)
	}
	if sh.Err() != nil {
		t.Fatal(sh.Err())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.ShardNames(); len(got) != 1 || got[0] != "hp-00" {
		t.Fatalf("shards after reopen: %v", got)
	}
	it, err := st2.Iterator()
	if err != nil {
		t.Fatal(err)
	}
	if got := drain(t, it); !reflect.DeepEqual(got, want) {
		t.Fatalf("reopen lost records: got %d, want %d", len(got), len(want))
	}
	// Appends resume.
	sh2, _ := st2.Shard("hp-00")
	if err := sh2.AppendRecord(rec("hp-00", 200)); err != nil {
		t.Fatal(err)
	}
	if n := sh2.Count(); n != 121 {
		t.Errorf("count after resume = %d, want 121", n)
	}
}

func TestReadSinceIncremental(t *testing.T) {
	st, err := Open(t.TempDir(), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sh, _ := st.Shard("hp-00")

	var all []logging.Record
	appendN := func(n int) {
		for i := 0; i < n; i++ {
			r := rec("hp-00", len(all))
			all = append(all, r)
			if err := sh.AppendRecord(r); err != nil {
				t.Fatal(err)
			}
		}
	}

	appendN(75)
	var got []logging.Record
	var cp Checkpoint
	// Small batches force batch continuation across segment boundaries.
	for {
		recs, next, err := sh.ReadSince(cp, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			break
		}
		got = append(got, recs...)
		if !cp.Before(next) {
			t.Fatalf("checkpoint did not advance: %+v -> %+v", cp, next)
		}
		cp = next
	}
	if !reflect.DeepEqual(got, all) {
		t.Fatalf("first drain mismatch: %d vs %d", len(got), len(all))
	}

	// No new data: repeated reads at the frontier return nothing.
	recs, cp2, err := sh.ReadSince(cp, 10)
	if err != nil || len(recs) != 0 {
		t.Fatalf("read at frontier: %d records, %v", len(recs), err)
	}

	// New appends are seen exactly once, from either checkpoint.
	appendN(30)
	recs, _, err = sh.ReadSince(cp2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs, all[75:]) {
		t.Fatalf("incremental read mismatch: got %d, want 30", len(recs))
	}
}

func TestReadSinceSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	sh, _ := st.Shard("hp-00")
	for i := 0; i < 50; i++ {
		sh.Append(rec("hp-00", i))
	}
	recs, cp, err := sh.ReadSince(Checkpoint{}, 20)
	if err != nil || len(recs) != 20 {
		t.Fatalf("first batch: %d, %v", len(recs), err)
	}
	st.Close()

	// The honeypot restarts; the collector still holds cp.
	st2, err := Open(dir, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	sh2, _ := st2.Shard("hp-00")
	rest, _, err := sh2.ReadSince(cp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 30 {
		t.Fatalf("resumed read returned %d records, want 30 (no resend)", len(rest))
	}
	if rest[0].PeerPort != 20 {
		t.Errorf("resumed read starts at record %d, want 20", rest[0].PeerPort)
	}
}

func TestIteratorRangeSkipsAndBounds(t *testing.T) {
	st, err := Open(t.TempDir(), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sh, _ := st.Shard("hp-00")
	var all []logging.Record
	for i := 0; i < 200; i++ {
		r := rec("hp-00", i)
		all = append(all, r)
		sh.Append(r)
	}
	from, to := t0.Add(30*time.Second), t0.Add(90*time.Second)
	it, err := st.IteratorRange(from, to)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, it)
	var want []logging.Record
	for _, r := range all {
		if !r.Time.Before(from) && r.Time.Before(to) {
			want = append(want, r)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("range iterator: got %d records, want %d", len(got), len(want))
	}
}

func TestIndexSidecarRebuilt(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	sh, _ := st.Shard("hp-00")
	for i := 0; i < 120; i++ {
		sh.Append(rec("hp-00", i))
	}
	segs := sh.Segments()
	if len(segs) < 3 {
		t.Fatalf("want ≥3 segments, got %d", len(segs))
	}
	st.Close()

	// Delete one sidecar and corrupt another: reopen must rebuild both.
	shardDir := filepath.Join(dir, "hp-00")
	if err := os.Remove(filepath.Join(shardDir, idxName(segs[0].Seq))); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(shardDir, idxName(segs[1].Seq)), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	sh2, _ := st2.Shard("hp-00")
	if n := sh2.Count(); n != 120 {
		t.Errorf("count after sidecar rebuild = %d, want 120", n)
	}
	segs2 := sh2.Segments()
	for i := range segs2[:len(segs2)-1] {
		if !reflect.DeepEqual(segs2[i], segs[i]) {
			t.Errorf("segment %d index mismatch after rebuild:\n got %+v\nwant %+v", i, segs2[i], segs[i])
		}
	}
}

func TestShardNameValidation(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for _, bad := range []string{"", "a/b", `a\b`, ".", ".."} {
		if _, err := st.Shard(bad); err == nil {
			t.Errorf("Shard(%q) accepted", bad)
		}
	}
	if _, err := st.Shard("hp-00"); err != nil {
		t.Errorf("Shard(hp-00): %v", err)
	}
}

func TestConcurrentAppendAndRead(t *testing.T) {
	st, err := Open(t.TempDir(), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sh, _ := st.Shard("hp-00")

	const writers, per = 4, 250
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				sh.Append(rec("hp-00", w*per+i))
			}
		}(w)
	}
	// Concurrent incremental reader.
	done := make(chan int)
	go func() {
		total := 0
		var cp Checkpoint
		for total < writers*per {
			recs, next, err := sh.ReadSince(cp, 64)
			if err != nil {
				t.Errorf("ReadSince: %v", err)
				break
			}
			total += len(recs)
			cp = next
		}
		done <- total
	}()
	wg.Wait()
	if sh.Err() != nil {
		t.Fatal(sh.Err())
	}
	if total := <-done; total != writers*per {
		t.Errorf("reader saw %d records, want %d", total, writers*per)
	}
	if n := sh.Count(); n != writers*per {
		t.Errorf("count = %d", n)
	}
}

func TestReadSinceStaleCheckpointReconciled(t *testing.T) {
	st, err := Open(t.TempDir(), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sh, _ := st.Shard("hp-00")
	for i := 0; i < 10; i++ {
		sh.Append(rec("hp-00", i))
	}
	end := sh.End()

	// Checkpoint beyond the newest segment: the shard was wiped and
	// recreated, so the collector must restart from the beginning
	// rather than silently starve.
	recs, next, err := sh.ReadSince(Checkpoint{Seg: end.Seg + 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 || next != end {
		t.Errorf("wiped-shard checkpoint: %d records, next %+v; want 10, %+v", len(recs), next, end)
	}

	// Checkpoint past the tail's end in the same segment: a truncated
	// torn tail. Clamp to the truncation point — no re-send of already
	// collected records, and new appends flow from there.
	stale := Checkpoint{Seg: end.Seg, Off: end.Off + 99}
	recs, next, err = sh.ReadSince(stale, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || next != end {
		t.Errorf("torn-tail checkpoint: %d records re-sent, next %+v; want 0, %+v", len(recs), next, end)
	}
	sh.Append(rec("hp-00", 42))
	recs, _, err = sh.ReadSince(next, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].PeerPort != 42 {
		t.Errorf("append after clamp: got %d records (%+v), want just the new one", len(recs), recs)
	}
}

func TestBackgroundFlusherBoundsCrashLoss(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{FlushEvery: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sh, _ := st.Shard("hp-00")
	for i := 0; i < 5; i++ {
		sh.Append(rec("hp-00", i))
	}
	// Without any reader or Close, the records must reach the OS within
	// a few flush periods — scan the segment file directly, as a
	// post-kill recovery would.
	path := filepath.Join(dir, "hp-00", segName(1))
	deadline := time.Now().Add(2 * time.Second)
	for {
		info, _, err := scanSegment(faultfs.OS{}, path, 1)
		if err == nil && info.Records == 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flusher never persisted: %d records on disk", info.Records)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestStoreIteratorEmpty(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	it, err := st.Iterator()
	if err != nil {
		t.Fatal(err)
	}
	if got := drain(t, it); len(got) != 0 {
		t.Errorf("empty store yielded %d records", len(got))
	}
}
