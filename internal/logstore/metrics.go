package logstore

import "repro/internal/obs"

// storeMetrics is the store's pre-resolved telemetry: every counter is
// looked up in the registry once, at open time, so the append and scan
// hot paths pay exactly one atomic add per metric — no map lookups, no
// allocation. The zero storeMetrics (nil counters) is the disabled form:
// obs metrics are nil-receiver-safe, so updates cost one branch.
type storeMetrics struct {
	appends     *obs.Counter // logstore.append.records
	appendBytes *obs.Counter // logstore.append.bytes
	rotations   *obs.Counter // logstore.segment.rotations
	rebuilds    *obs.Counter // logstore.index.rebuilds
	truncations *obs.Counter // logstore.recovery.truncations
	scanRecords *obs.Counter // logstore.scan.records
	scanBytes   *obs.Counter // logstore.scan.bytes

	manifestRebuilds *obs.Counter // logstore.manifest.rebuilds
	quarantines      *obs.Counter // logstore.quarantines
	healAttempts     *obs.Counter // logstore.heal.attempts
	heals            *obs.Counter // logstore.heal.successes
	dropped          *obs.Counter // logstore.dropped.records
}

// newStoreMetrics resolves the store's counters; a nil registry yields
// the zero (disabled) set.
func newStoreMetrics(r *obs.Registry) storeMetrics {
	if r == nil {
		return storeMetrics{}
	}
	return storeMetrics{
		appends:     r.Counter("logstore.append.records"),
		appendBytes: r.Counter("logstore.append.bytes"),
		rotations:   r.Counter("logstore.segment.rotations"),
		rebuilds:    r.Counter("logstore.index.rebuilds"),
		truncations: r.Counter("logstore.recovery.truncations"),
		scanRecords: r.Counter("logstore.scan.records"),
		scanBytes:   r.Counter("logstore.scan.bytes"),

		manifestRebuilds: r.Counter("logstore.manifest.rebuilds"),
		quarantines:      r.Counter("logstore.quarantines"),
		healAttempts:     r.Counter("logstore.heal.attempts"),
		heals:            r.Counter("logstore.heal.successes"),
		dropped:          r.Counter("logstore.dropped.records"),
	}
}
