// Package logstore is the campaign's on-disk event store: a sharded,
// segmented, append-only log of measurement records.
//
// The paper's platform collects honeypot query logs for weeks at a time;
// at the target scale (hundreds of millions of records, cf. "Ten weeks in
// the life of an eDonkey server") neither the honeypots nor the manager
// can hold a campaign in memory. The store gives every honeypot a shard —
// a directory of numbered segment files — and gives readers a k-way-merged
// streaming cursor over all shards, so collection and analysis touch one
// record at a time.
//
// Layout:
//
//	<dir>/<shard>/00000001.seg   CRC-framed records (logging binary codec)
//	<dir>/<shard>/00000001.idx   sparse index sidecar of a sealed segment
//	<dir>/<shard>/00000002.seg   active segment (tail of the shard)
//
// Each segment frame is [u32 length][u32 crc32][body], body being the
// exact bytes of logging.EncodeRecord. Segments rotate at a size
// threshold; sealed segments get an index sidecar recording record count
// and min/max timestamp, which lets time-bounded scans skip whole
// segments. On open, a torn tail (crash mid-append) is detected by CRC
// and truncated, and appends resume at the last good frame.
//
// Readers address positions with Checkpoints (segment sequence + byte
// offset); the control plane's incremental collection stores a checkpoint
// per honeypot so every record crosses the network at most once, even
// across honeypot restarts.
package logstore

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/faultfs"
	"repro/internal/obs"
)

// DefaultSegmentBytes is the rotation threshold when Options.SegmentBytes
// is zero: large enough to amortize file overhead, small enough that a
// sparse index skips meaningful chunks of a campaign.
const DefaultSegmentBytes = 4 << 20

// Options tunes a Store.
type Options struct {
	// SegmentBytes is the size threshold at which the active segment is
	// sealed and a new one started (0 = DefaultSegmentBytes).
	SegmentBytes int64
	// SyncOnRotate fsyncs a segment as it is sealed. Appends themselves
	// never fsync: the recovery path makes torn tails safe.
	SyncOnRotate bool
	// FlushEvery, when positive, runs a background flusher that pushes
	// buffered appends to the OS on this cadence, bounding what a crash
	// can lose to roughly one period. Zero leaves flushing to rotation,
	// readers and Close — right for simulations, wrong for live
	// honeypots, whose records must outlive the process.
	FlushEvery time.Duration
	// Metrics, when set, reports the store's activity (appends, bytes,
	// segment rotations, index rebuilds, recovery truncations, scan
	// records and bytes) into the registry under "logstore.*" names.
	// Counters are resolved once at open time, so the hot paths stay
	// allocation-free; nil disables telemetry at one-branch cost.
	Metrics *obs.Registry
	// FS is the filesystem the store runs on (nil = the real one,
	// faultfs.OS). Tests and fault-schedule scenarios wrap it with
	// faultfs injectors to model crashes, torn writes and disk outages.
	FS faultfs.FS
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.FS == nil {
		o.FS = faultfs.OS{}
	}
	return o
}

// Checkpoint addresses a position in a shard: the segment sequence number
// and the byte offset within it. The zero value means "start of the
// shard". Checkpoints are stable across restarts (segments are never
// rewritten), which is what makes incremental collection idempotent.
type Checkpoint struct {
	Seg uint64 `json:"seg"`
	Off int64  `json:"off"`
}

// Before reports whether c addresses an earlier position than d.
func (c Checkpoint) Before(d Checkpoint) bool {
	return c.Seg < d.Seg || (c.Seg == d.Seg && c.Off < d.Off)
}

// Store is a directory of shards, one per honeypot.
type Store struct {
	dir string
	opt Options
	fs  faultfs.FS
	m   storeMetrics

	mu     sync.Mutex
	shards map[string]*Shard
	quar   []Quarantine // data refused at open; see Quarantined

	manMu sync.Mutex // guards man and the MANIFEST file
	man   *manifestData

	flushStop chan struct{} // closes the background flusher, if any
	flushDone chan struct{}
}

// Open opens (or creates) a store rooted at dir. Existing shards are
// recovered against the store manifest: each shard's sealed list and
// tail come from the manifest, the tail segment is scanned and any torn
// part truncated so appends resume cleanly, and segments the manifest
// does not account for are quarantined (see Quarantined). A store
// predating the manifest adopts every segment it finds and writes one.
func Open(dir string, opt Options) (*Store, error) {
	opt = opt.withDefaults()
	fsys := opt.FS
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("logstore: %w", err)
	}
	s := &Store{dir: dir, opt: opt, fs: fsys, m: newStoreMetrics(opt.Metrics), shards: make(map[string]*Shard)}
	man, err := readManifest(fsys, dir)
	if err != nil {
		if !errors.Is(err, errManifestCorrupt) {
			return nil, err
		}
		// A corrupt manifest is itself a crash artifact (torn replace):
		// rebuild it from the directory instead of refusing to open.
		s.m.manifestRebuilds.Inc()
		man = nil
	}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("logstore: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() || e.Name() == quarantineDir {
			continue
		}
		name := e.Name()
		var ms *manifestShard
		if man != nil {
			entry, ok := man.Shards[name]
			if !ok {
				// A directory the manifest never heard of cannot join the
				// campaign; move it aside wholesale.
				q, err := quarantineShardDir(fsys, dir, name)
				if err != nil {
					return nil, err
				}
				s.m.quarantines.Inc()
				s.quar = append(s.quar, q)
				continue
			}
			ms = &entry
		}
		sh, quar, err := openShard(fsys, filepath.Join(dir, name), name, s.opt, ms)
		if err != nil {
			return nil, err
		}
		sh.store = s
		s.shards[name] = sh
		s.quar = append(s.quar, quar...)
	}
	if man != nil {
		for name, entry := range man.Shards {
			if _, ok := s.shards[name]; ok {
				continue
			}
			// The manifest promised a shard the disk lost. An empty entry
			// (tail 1, nothing sealed) is the benign crash window of
			// manifest-first shard creation; anything else is a gap.
			if len(entry.Sealed) > 0 || entry.Tail > 1 {
				s.m.quarantines.Inc()
				s.quar = append(s.quar, Quarantine{Shard: name, Reason: "shard directory missing"})
			}
		}
	}
	// Persist the reconciled view: what the shards actually recovered is
	// the new truth.
	s.man = &manifestData{Shards: make(map[string]manifestShard, len(s.shards))}
	for name, sh := range s.shards {
		s.man.Shards[name] = manifestShard{Sealed: append([]SegmentInfo(nil), sh.sealed...), Tail: sh.active.Seq}
	}
	if err := writeManifest(fsys, dir, s.man); err != nil {
		return nil, err
	}
	if s.opt.FlushEvery > 0 {
		s.flushStop = make(chan struct{})
		s.flushDone = make(chan struct{})
		go s.flushLoop()
	}
	return s, nil
}

// flushLoop periodically pushes buffered appends to the OS until Close.
func (s *Store) flushLoop() {
	defer close(s.flushDone)
	t := time.NewTicker(s.opt.FlushEvery)
	defer t.Stop()
	for {
		select {
		case <-s.flushStop:
			return
		case <-t.C:
			s.Flush() // per-shard errors stick in Shard.Err
		}
	}
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Shard returns the named shard, creating it if needed. Shard names map
// to directories, so they must not contain path separators.
func (s *Store) Shard(name string) (*Shard, error) {
	if name == "" || strings.ContainsAny(name, "/\\") || name == "." || name == ".." ||
		name == quarantineDir || name == manifestName {
		return nil, fmt.Errorf("logstore: invalid shard name %q", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if sh, ok := s.shards[name]; ok {
		return sh, nil
	}
	// Manifest first, directory second: see noteShard on why this order
	// makes the crash window benign.
	if err := s.noteShard(name); err != nil {
		return nil, err
	}
	sh, _, err := openShard(s.fs, filepath.Join(s.dir, name), name, s.opt, nil)
	if err != nil {
		return nil, err
	}
	sh.store = s
	s.shards[name] = sh
	return sh, nil
}

// ShardNames lists existing shards in lexicographic order — the tie-break
// order the Iterator uses for equal timestamps.
func (s *Store) ShardNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.shards))
	for name := range s.shards {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// TotalRecords sums record counts over all shards.
func (s *Store) TotalRecords() uint64 {
	s.mu.Lock()
	shards := make([]*Shard, 0, len(s.shards))
	for _, sh := range s.shards {
		shards = append(shards, sh)
	}
	s.mu.Unlock()
	var n uint64
	for _, sh := range shards {
		n += sh.Count()
	}
	return n
}

// Err returns the first sticky I/O error of any shard. Sinks write
// through the error-less logging.Sink interface, so failures park here;
// anything assembling a dataset from the store must consult it or risk
// silently shipping a truncated campaign.
func (s *Store) Err() error {
	s.mu.Lock()
	shards := make([]*Shard, 0, len(s.shards))
	for _, sh := range s.shards {
		shards = append(shards, sh)
	}
	s.mu.Unlock()
	for _, sh := range shards {
		if err := sh.Err(); err != nil {
			return fmt.Errorf("logstore: shard %s: %w", sh.Name(), err)
		}
	}
	return nil
}

// Flush flushes every shard's buffered writes to the OS.
func (s *Store) Flush() error {
	for _, name := range s.ShardNames() {
		s.mu.Lock()
		sh := s.shards[name]
		s.mu.Unlock()
		if err := sh.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes and closes every shard. The store must not be used after.
func (s *Store) Close() error {
	if s.flushStop != nil {
		close(s.flushStop)
		<-s.flushDone
		s.flushStop = nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, sh := range s.shards {
		if err := sh.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.shards = make(map[string]*Shard)
	return first
}

// Iterator streams every record of every shard, k-way merged into
// timestamp order (ties broken by shard name, then shard append order) —
// the streaming equivalent of logging.Merge over per-honeypot logs.
func (s *Store) Iterator() (*Iterator, error) {
	return s.IteratorRange(time.Time{}, time.Time{})
}

// IteratorRange is Iterator restricted to records with from ≤ t < to
// (zero bounds are open). Whole segments outside the window are skipped
// via the sparse per-segment indexes.
func (s *Store) IteratorRange(from, to time.Time) (*Iterator, error) {
	names := s.ShardNames()
	shards := make([]*Shard, 0, len(names))
	s.mu.Lock()
	for _, n := range names {
		shards = append(shards, s.shards[n])
	}
	s.mu.Unlock()
	return newIterator(shards, from, to)
}
