package repro_test

import (
	"bytes"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro"
	"repro/internal/des"
)

// runWithScheduler runs the spec under an explicit event-loop scheduler
// and normalizes the repro.Result for cross-scheduler comparison: the wheel's
// bookkeeping counters (cascades, overflow scans) are not history, and
// per-run temp paths and the frame's internal cache state can't be
// DeepEqualed directly.
func runWithScheduler(t *testing.T, spec repro.Spec, kind des.SchedulerKind) *repro.Result {
	t.Helper()
	res, err := repro.RunSpecWith(spec, repro.RunOptions{Scheduler: kind})
	if err != nil {
		t.Fatalf("%s run: %v", kind, err)
	}
	res.Engine.Cascades, res.Engine.OverflowScans = 0, 0
	res.StoreDir, res.ExportDir = "", ""
	res.Frame = nil
	return res
}

// dirBytes flattens a logstore directory into relative path → contents.
func dirBytes(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		out[rel] = b
		return nil
	})
	if err != nil {
		t.Fatalf("walk %s: %v", dir, err)
	}
	return out
}

// TestSchedulerDatasetEquivalence is the acceptance property of the
// timing-wheel scheduler: on every registered scenario, in both
// collection modes, a campaign run on the wheel must be bit-identical
// to the same campaign run on the retained heap oracle — the full
// repro.Result (dataset, component stats, fault log, event counts) under
// DeepEqual, and in spill mode the logstore directory byte-for-byte.
func TestSchedulerDatasetEquivalence(t *testing.T) {
	for _, name := range repro.Scenarios() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			base, err := repro.ScenarioSpec(name)
			if err != nil {
				t.Fatal(err)
			}
			base.Scale *= equivScale

			t.Run("memory", func(t *testing.T) {
				wheel := runWithScheduler(t, base, des.SchedulerWheel)
				heap := runWithScheduler(t, base, des.SchedulerHeap)
				if !reflect.DeepEqual(wheel, heap) {
					t.Error("wheel and heap campaigns diverge (materialized mode)")
				}
			})
			t.Run("store-stream", func(t *testing.T) {
				run := func(kind des.SchedulerKind) (*repro.Result, map[string][]byte) {
					spec := base
					spec.Collection.StoreDir = filepath.Join(t.TempDir(), "spill-"+string(kind))
					spec.Collection.Stream = true
					res := runWithScheduler(t, spec, kind)
					return res, dirBytes(t, spec.Collection.StoreDir)
				}
				wheel, wheelStore := run(des.SchedulerWheel)
				heap, heapStore := run(des.SchedulerHeap)
				if !reflect.DeepEqual(wheel, heap) {
					t.Error("wheel and heap campaigns diverge (streamed mode)")
				}
				if len(wheelStore) == 0 {
					t.Fatal("no spill files written")
				}
				if len(wheelStore) != len(heapStore) {
					t.Fatalf("store layouts differ: %d vs %d files", len(wheelStore), len(heapStore))
				}
				for rel, b := range wheelStore {
					hb, ok := heapStore[rel]
					if !ok {
						t.Errorf("store file %s missing under heap", rel)
						continue
					}
					if !bytes.Equal(b, hb) {
						t.Errorf("store file %s differs between schedulers", rel)
					}
				}
			})
		})
	}
}
