package repro_test

import (
	"reflect"
	"testing"

	"repro"
	"repro/internal/analysis"
	"repro/internal/catalog"
	"repro/internal/logging"
	"repro/internal/stats"
)

func TestScaledConfigs(t *testing.T) {
	d := repro.ScaledDistributed(0.25)
	if d.Scale != 0.25 || d.Honeypots != 24 || d.Days != 32 {
		t.Errorf("ScaledDistributed: %+v", d)
	}
	g := repro.ScaledGreedy(0.1)
	if g.Scale != 0.1 {
		t.Errorf("ScaledGreedy scale: %v", g.Scale)
	}
	if g.MaxAdopted >= repro.DefaultGreedy().MaxAdopted {
		t.Errorf("ScaledGreedy should shrink the adoption cap: %d", g.MaxAdopted)
	}
	tiny := repro.ScaledGreedy(0.001)
	if tiny.MaxAdopted < 50 {
		t.Errorf("adoption cap floor: %d", tiny.MaxAdopted)
	}
	full := repro.ScaledGreedy(1)
	if full.MaxAdopted != repro.DefaultGreedy().MaxAdopted {
		t.Errorf("scale 1 must keep the paper's cap: %d", full.MaxAdopted)
	}
}

func TestAnalyzePopulatesDistributedReport(t *testing.T) {
	cfg := repro.ScaledDistributed(0.005)
	cfg.Days = 5
	cfg.Honeypots = 6
	cfg.Catalog = catalog.Config{NumFiles: 2000, Vocabulary: 400, PopularityExp: 0.9, Seed: 3}
	cfg.LibraryRegion = 800
	res, err := repro.RunDistributed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := repro.Analyze(res)

	if rep.TableI.DistinctPeers == 0 {
		t.Error("TableI empty")
	}
	if len(rep.PeerGrowth.Cumulative) != cfg.Days {
		t.Errorf("growth has %d days", len(rep.PeerGrowth.Cumulative))
	}
	if len(rep.HourlyHello) != cfg.Days*24 {
		t.Errorf("hourly hello has %d buckets (want full %d-day window)", len(rep.HourlyHello), cfg.Days)
	}
	for _, gs := range []struct {
		name string
		s    map[string][]int
	}{
		{"Fig5", rep.HelloPeersByGroup.Groups},
		{"Fig6", rep.StartUploadPeersByGroup.Groups},
		{"Fig7", rep.RequestPartsByGroup.Groups},
	} {
		if len(gs.s["random-content"]) == 0 || len(gs.s["no-content"]) == 0 {
			t.Errorf("%s missing a group", gs.name)
		}
	}
	if rep.TopPeer == "" || rep.TopPeerQueries == 0 {
		t.Error("top peer not identified")
	}
	if len(rep.HoneypotSubsets.N) != cfg.Honeypots+1 { // includes n=0
		t.Errorf("Fig10 rows: %d", len(rep.HoneypotSubsets.N))
	}
	// Greedy-only fields stay empty for distributed campaigns.
	if len(rep.RandomFiles) != 0 || len(rep.PopularFiles) != 0 {
		t.Error("file subsets computed for a distributed campaign")
	}
	if rep.CoInterest.Peers == 0 || rep.CoInterest.Edges == 0 {
		t.Error("co-interest graph empty")
	}
	if rep.CoInterest.LargestComponent < rep.CoInterest.Peers/2 {
		t.Errorf("4 shared bait files should form a giant component; largest=%d of %d",
			rep.CoInterest.LargestComponent, rep.CoInterest.Peers+rep.CoInterest.Files)
	}
}

func TestAnalyzeGreedyFileSubsetsRespectOptions(t *testing.T) {
	cfg := repro.ScaledGreedy(0.004)
	cfg.Days = 3
	cfg.MaxAdopted = 120
	cfg.Catalog = catalog.Config{NumFiles: 2000, Vocabulary: 400, PopularityExp: 0.9, Seed: 4}
	res, err := repro.RunGreedy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opt := repro.DefaultAnalyzeOptions()
	opt.FileSubsetSize = 30
	rep := repro.AnalyzeWith(res, opt)
	if len(rep.RandomFiles) != 30 {
		t.Errorf("random files: %d", len(rep.RandomFiles))
	}
	if len(rep.PopularFiles) != 30 {
		t.Errorf("popular files: %d", len(rep.PopularFiles))
	}
	if len(rep.RandomFileSubsets.N) != 30 || len(rep.PopularFileSubsets.N) != 30 {
		t.Error("subset rows mismatch")
	}
	// Popular files are ranked by distinct peers: the first must receive
	// at least as many peers as a random pick's average.
	if rep.PopularFileSubsets.Avg[0] < rep.RandomFileSubsets.Avg[0] {
		t.Errorf("popular n=1 avg %.0f < random n=1 avg %.0f",
			rep.PopularFileSubsets.Avg[0], rep.RandomFileSubsets.Avg[0])
	}
}

// TestAnalyzeStreamWith pins the streamed-analysis entry points: the
// options actually reach the extractors (AnalyzeStream used to hardcode
// the defaults), and a campaign that never streamed errors cleanly.
func TestAnalyzeStreamWith(t *testing.T) {
	spec, err := repro.ScenarioSpec("greedy")
	if err != nil {
		t.Fatal(err)
	}
	spec.Scale *= 0.004
	spec.Collection.Stream = true
	res, err := repro.RunSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	opt := repro.DefaultAnalyzeOptions()
	opt.FileSubsetSize = 12
	rep, err := repro.AnalyzeStreamWith(res, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.RandomFiles) != 12 || len(rep.PopularFiles) != 12 {
		t.Errorf("options ignored: %d random / %d popular files",
			len(rep.RandomFiles), len(rep.PopularFiles))
	}

	spec.Collection.Stream = false
	spec.Collection.ExportDir = ""
	mres, err := repro.RunSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repro.AnalyzeStreamWith(mres, opt); err == nil {
		t.Error("AnalyzeStreamWith accepted a materialized campaign")
	}
	if _, err := repro.AnalyzeStream(mres); err == nil {
		t.Error("AnalyzeStream accepted a materialized campaign")
	}
}

// TestAnalyzeMatchesReferenceExtractors pins the frame-based Analyze to
// the slice-based reference extractors on real simulated campaigns: the
// report must be identical field by field.
func TestAnalyzeMatchesReferenceExtractors(t *testing.T) {
	cfg := repro.ScaledDistributed(0.004)
	cfg.Days = 4
	cfg.Honeypots = 6
	cfg.Catalog = catalog.Config{NumFiles: 2000, Vocabulary: 400, PopularityExp: 0.9, Seed: 9}
	cfg.LibraryRegion = 800
	res, err := repro.RunDistributed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := repro.Analyze(res)
	recs := res.Dataset.Records

	if want := analysis.ComputeTableI(recs, len(res.HoneypotIDs), res.Days, len(res.Advertised)); rep.TableI != want {
		t.Errorf("TableI:\n got %+v\nwant %+v", rep.TableI, want)
	}
	if want := analysis.PeerGrowth(recs, res.Start, res.Days); !reflect.DeepEqual(rep.PeerGrowth, want) {
		t.Errorf("PeerGrowth differs from reference")
	}
	if want := analysis.HourlyHello(recs, res.Start, res.Days*24); !reflect.DeepEqual(rep.HourlyHello, want) {
		t.Errorf("HourlyHello differs from reference")
	}
	if want := analysis.GroupDistinctPeers(recs, res.GroupOf, logging.KindHello, res.Start, res.Days); !reflect.DeepEqual(rep.HelloPeersByGroup, want) {
		t.Errorf("HelloPeersByGroup differs from reference")
	}
	if want := analysis.GroupDistinctPeers(recs, res.GroupOf, logging.KindStartUpload, res.Start, res.Days); !reflect.DeepEqual(rep.StartUploadPeersByGroup, want) {
		t.Errorf("StartUploadPeersByGroup differs from reference")
	}
	if want := analysis.GroupMessageCounts(recs, res.GroupOf, logging.KindRequestPart, res.Start, res.Days); !reflect.DeepEqual(rep.RequestPartsByGroup, want) {
		t.Errorf("RequestPartsByGroup differs from reference")
	}
	peer, n := analysis.TopPeer(recs)
	if rep.TopPeer != peer || rep.TopPeerQueries != n {
		t.Errorf("TopPeer: got %q/%d want %q/%d", rep.TopPeer, rep.TopPeerQueries, peer, n)
	}
	if want := analysis.TopPeerSeries(recs, res.GroupOf, peer, logging.KindStartUpload, res.Start, res.Days); !reflect.DeepEqual(rep.TopPeerStartUpload, want) {
		t.Errorf("TopPeerStartUpload differs from reference")
	}
	sets, universe := analysis.HoneypotPeerSets(recs, res.HoneypotIDs)
	want := stats.UnionEstimate(sets, universe, stats.SubsetUnionConfig{Samples: 100, Seed: 1, IncludeZero: true})
	if !reflect.DeepEqual(rep.HoneypotSubsets, want) {
		t.Errorf("HoneypotSubsets differs from reference")
	}
	if want := analysis.BuildInterestGraph(recs).Stats(); rep.CoInterest != want {
		t.Errorf("CoInterest:\n got %+v\nwant %+v", rep.CoInterest, want)
	}

	gcfg := repro.ScaledGreedy(0.004)
	gcfg.Days = 3
	gcfg.MaxAdopted = 120
	gcfg.Catalog = catalog.Config{NumFiles: 2000, Vocabulary: 400, PopularityExp: 0.9, Seed: 10}
	gres, err := repro.RunGreedy(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	grep := repro.Analyze(gres)
	grecs := gres.Dataset.Records
	ranked := analysis.QueriedFiles(grecs)
	for i, h := range grep.PopularFiles {
		if ranked[i].Hash != h {
			t.Fatalf("PopularFiles[%d] diverges from reference ranking", i)
		}
	}
	fsets, funiverse := analysis.FilePeerSets(grecs, grep.PopularFiles)
	fwant := stats.UnionEstimate(fsets, funiverse, stats.SubsetUnionConfig{Samples: 100, Seed: 1})
	if !reflect.DeepEqual(grep.PopularFileSubsets, fwant) {
		t.Errorf("PopularFileSubsets differs from reference")
	}
}
